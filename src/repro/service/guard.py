"""Overload-and-failure protection for the scheduling service.

``repro.service.Scheduler`` assumes a well-behaved world: workers never
die, queues never fill, and every caller is happy to wait forever.
This module is the armor the ROADMAP's "heavy traffic" scenarios
require, threaded through the scheduler's cold-build path:

* a **structured error taxonomy** — every guarded failure leaves the
  service as a :class:`ServiceError` subclass carrying machine-readable
  fields (and the request's :class:`~repro.service.tracing.RequestTrace`),
  never a bare timeout or a hung thread;
* **deadline budgets** (:class:`DeadlineExceeded`) — a request carries a
  wall-clock budget checked at admission, before each build attempt and
  across backoff sleeps, so a caller with an SLO gets a fast structured
  "no" instead of a slow nothing;
* **bounded retries with seeded-jitter exponential backoff**
  (:class:`BackoffPolicy`) — worker crashes and transient build faults
  are retried a bounded number of times with deterministic jitter, then
  failed over to an inline build;
* a **circuit breaker** (:class:`CircuitBreaker`) — repeated worker
  failures trip the breaker, degrading cold builds to the inline tier
  (slower, but alive) until a half-open probe on the respawned pool
  succeeds;
* **admission control and load shedding** (:class:`AdmissionGate`) — a
  bounded queue in front of the cold-build tier with three shedding
  policies (``reject-newest``, ``reject-oldest``, ``deadline``), the
  last dropping the waiter whose deadline is least likely to be met
  given the queue depth and the observed cold-build latency EWMA.

Everything here is **opt-in and zero-cost when off**: a scheduler built
without a :class:`GuardConfig` takes exactly the pre-guard code path
(the acceptance bar is byte-identical serve-bench behavior), and even a
guarded scheduler with no faults and generous limits serves the same
bytes as an unguarded one.

All guard activity is observable through frozen ``service.guard.*``
metric names (see :data:`repro.obs.telemetry.METRIC_NAMES`) and through
new :class:`~repro.service.tracing.RequestTrace` fields (``retries``,
``shed_reason``, ``breaker_state``), and the whole layer is exercised
end-to-end by the seeded chaos campaign in :mod:`repro.service.chaos`
(``repro serve-chaos``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ServiceError",
    "DeadlineExceeded",
    "ServiceOverloaded",
    "WorkerCrashed",
    "TransientBuildError",
    "SHED_POLICIES",
    "BREAKER_STATES",
    "GuardConfig",
    "BackoffPolicy",
    "CircuitBreaker",
    "AdmissionGate",
    "DeadlineBudget",
]

#: Admission-queue shedding policies (see :class:`AdmissionGate`).
SHED_POLICIES = ("reject-newest", "reject-oldest", "deadline")

#: Circuit-breaker states, in gauge order: the ``service.guard.breaker_state``
#: gauge reports the index into this tuple.
BREAKER_STATES = ("closed", "open", "half-open")


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base of every structured failure the guarded service can raise.

    Each instance carries machine-readable fields (exposed via
    :meth:`to_json`) and, once it leaves
    :meth:`~repro.service.Scheduler.request`, the request's
    :class:`~repro.service.tracing.RequestTrace` in ``.trace``.  The
    ``counter`` class attribute names the per-request outcome counter
    (``service.guard.<counter>``) the scheduler bumps exactly once per
    failed request — the chaos harness reconciles those counters
    against observed outcomes.
    """

    #: ``service.guard.<counter>`` outcome counter; "" = not counted.
    counter = ""

    def __init__(self, message: str, **fields):
        super().__init__(message)
        self.fields: Dict[str, object] = fields
        #: Filled by Scheduler.request just before the error escapes.
        self.trace = None

    def clone(self) -> "ServiceError":
        """A fresh instance with the same message and fields.

        A single-flight owner's error object is shared by every waiter;
        each request must attach its *own* trace, so the scheduler
        clones before annotating.
        """
        dup = type(self)(str(self), **dict(self.fields))
        return dup

    def to_json(self) -> Dict[str, object]:
        """Flat, sorted-key JSON view for logs and the chaos report."""
        doc: Dict[str, object] = {"error": type(self).__name__,
                                  "message": str(self)}
        for k in sorted(self.fields):
            doc[k] = self.fields[k]
        return doc


class DeadlineExceeded(ServiceError):
    """The request's wall-clock budget ran out before a response.

    ``fields``: ``deadline`` (budget seconds), ``elapsed`` (seconds
    spent when the check fired), ``stage`` (``"admission"`` |
    ``"wait"`` | ``"build"`` | ``"backoff"``).
    """

    counter = "deadline_exceeded"


class ServiceOverloaded(ServiceError):
    """Admission control shed this request instead of queueing it.

    ``fields``: ``policy``, ``shed_reason`` (``"reject_newest"`` |
    ``"reject_oldest"`` | ``"deadline_earliest"`` |
    ``"deadline_hopeless"``), ``queue_depth``, ``capacity``.
    """

    counter = "shed"


class WorkerCrashed(ServiceError):
    """A cold build lost its worker process and every recovery failed.

    Normally a crash is invisible to callers — the scheduler respawns
    the pool, retries, and finally fails over to an inline build.  This
    error only escapes when the guard is configured with
    ``inline_failover=False`` (the chaos harness uses that to observe
    the raw taxonomy).  ``fields``: ``attempts``, ``breaker_state``.
    """

    counter = "worker_crashed"


class TransientBuildError(RuntimeError):
    """A retryable, non-crash build failure (chaos fault injection).

    Raised *inside* the build attempt; the scheduler's retry loop
    treats it exactly like a worker crash minus the pool respawn.  It
    is not a :class:`ServiceError` — it never escapes the retry loop
    except wrapped by exhaustion handling.
    """


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class GuardConfig:
    """Tunable knobs of the protection layer; validated on creation.

    ``deadline`` is the default per-request budget (seconds; ``None`` =
    unbounded, per-request ``deadline=`` overrides).  ``max_retries``
    bounds *re*-attempts after the first build try.  The backoff delay
    before retry ``k`` (1-based) is ``min(cap, base * factor**(k-1))``
    stretched by a seeded jitter of ±``jitter`` fraction.  The breaker
    trips to ``open`` after ``breaker_threshold`` consecutive worker
    failures, waits ``breaker_cooldown`` seconds, then lets exactly one
    half-open probe through.  ``admission_capacity`` bounds concurrent
    cold builds (``None`` disables admission control entirely);
    ``admission_queue`` bounds waiters beyond that, shed according to
    ``shed_policy``.  ``inline_failover=False`` surfaces
    :class:`WorkerCrashed` instead of degrading to an inline build.

    ``clock`` and ``sleep`` are injectable for deterministic tests; the
    defaults are :func:`time.monotonic` and :func:`time.sleep`.
    ``chaos_hook(stage, attempt)`` is the fault-injection port used by
    :mod:`repro.service.chaos`: it may return ``None`` or an
    ``(action, value)`` pair with action in ``{"kill_worker",
    "slow_build", "fail_transient"}``.
    """

    deadline: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap: float = 0.25
    backoff_jitter: float = 0.1
    seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    admission_capacity: Optional[int] = None
    admission_queue: int = 8
    shed_policy: str = "reject-newest"
    inline_failover: bool = True
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    chaos_hook: Optional[
        Callable[[str, int], Optional[Tuple[str, float]]]
    ] = None

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff base/cap must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )
        if self.admission_capacity is not None and self.admission_capacity < 1:
            raise ValueError(
                f"admission_capacity must be >= 1, got "
                f"{self.admission_capacity}"
            )
        if self.admission_queue < 0:
            raise ValueError(
                f"admission_queue must be >= 0, got {self.admission_queue}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; choose from "
                f"{SHED_POLICIES}"
            )


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------
class DeadlineBudget:
    """One request's wall-clock budget against an injectable clock.

    ``budget=None`` means unbounded: :meth:`remaining` returns ``None``
    and :meth:`check` never raises.
    """

    __slots__ = ("budget", "_t0", "_clock")

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left, clamped at 0.0; ``None`` when unbounded."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.elapsed())

    def expired(self) -> bool:
        return self.budget is not None and self.elapsed() >= self.budget

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.budget:.6g}s exceeded at stage "
                f"{stage!r}",
                deadline=self.budget,
                elapsed=round(self.elapsed(), 6),
                stage=stage,
            )


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------
class BackoffPolicy:
    """Bounded exponential backoff with seeded, deterministic jitter.

    ``delay(k)`` for retry ``k`` (1-based) is ``min(cap, base *
    factor**(k-1))`` scaled by a uniform factor in ``[1 - jitter,
    1 + jitter]`` drawn from a private :class:`random.Random` — the
    same seed yields the same delay sequence, so a chaos run's timing
    story replays.
    """

    def __init__(
        self,
        base: float = 0.01,
        factor: float = 2.0,
        cap: float = 0.25,
        jitter: float = 0.1,
        seed: int = 0,
    ):
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @classmethod
    def from_config(cls, config: GuardConfig) -> "BackoffPolicy":
        return cls(
            base=config.backoff_base,
            factor=config.backoff_factor,
            cap=config.backoff_cap,
            jitter=config.backoff_jitter,
            seed=config.seed,
        )

    def delay(self, attempt: int) -> float:
        """Jittered delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        if not self.jitter:
            return raw
        with self._lock:
            u = self._rng.uniform(-1.0, 1.0)
        return raw * (1.0 + self.jitter * u)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Three-state breaker over the worker-pool tier.

    *closed* — worker builds allowed; ``failure_threshold`` consecutive
    failures trip it to *open*.  *open* — worker builds denied (cold
    builds degrade to the inline tier) until ``cooldown`` seconds pass,
    then the next :meth:`allow_worker` claims the single *half-open*
    probe slot.  Probe success closes the breaker; probe failure
    reopens it and restarts the cooldown.

    ``on_transition(state)`` fires on every state change and
    ``on_probe()`` whenever a half-open probe slot is claimed (the
    scheduler uses them to keep the ``service.guard.breaker_state``
    gauge and the trip/probe counters fresh).  Thread-safe; the clock
    is injectable.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str], None]] = None,
        on_probe: Optional[Callable[[], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._on_probe = on_probe
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime counts, exposed for reconciliation.
        self.trips = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Cooldown expiry is observed lazily: an open breaker *reports*
        # open until someone asks to build, at which point the probe
        # slot opens.  State reads must reflect that the gate would now
        # let a probe through.
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            return "half-open"
        return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        if self._on_transition is not None:
            self._on_transition(state)

    def allow_worker(self) -> bool:
        """May the next cold build use the worker pool right now?"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._transition("half-open")
            # half-open: exactly one in-flight probe.
            if self._probing:
                return False
            self._probing = True
            self.probes += 1
            if self._on_probe is not None:
                self._on_probe()
            return True

    def record_success(self) -> None:
        """A worker build completed; close the breaker if probing."""
        with self._lock:
            self._consecutive = 0
            if self._state == "half-open":
                self._probing = False
                self._transition("closed")

    def record_failure(self) -> None:
        """A worker build crashed/failed; maybe trip or reopen."""
        with self._lock:
            if self._state == "half-open":
                self._probing = False
                self._opened_at = self._clock()
                self._consecutive = 0
                self._transition("open")
                self.trips += 1
                return
            self._consecutive += 1
            if (
                self._state == "closed"
                and self._consecutive >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._consecutive = 0
                self._transition("open")
                self.trips += 1


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class _Waiter:
    """One queued request: its deadline, arrival order, and verdict."""

    __slots__ = ("seq", "deadline_abs", "state", "shed_reason")

    def __init__(self, seq: int, deadline_abs: float):
        self.seq = seq
        #: Absolute deadline on the gate's clock; +inf when unbounded.
        self.deadline_abs = deadline_abs
        #: "waiting" -> "admitted" | "shed".
        self.state = "waiting"
        self.shed_reason = ""


@dataclass
class _GateStats:
    """Point-in-time gate observability (for traces and tests)."""

    active: int = 0
    queued: int = 0
    ewma_build_seconds: float = 0.0
    admitted: int = 0
    shed: int = 0


class AdmissionGate:
    """Bounded admission in front of the cold-build tier.

    At most ``capacity`` requests build concurrently; up to
    ``queue_limit`` more wait.  A request arriving past both bounds
    triggers the shedding policy:

    * ``reject-newest`` — the arriving request is shed;
    * ``reject-oldest`` — the longest-waiting request is shed and the
      arrival takes its place (freshest-work-first under overload);
    * ``deadline`` — among the waiters *and* the arrival, the request
      with the earliest absolute deadline is shed (it is the least
      likely to be served in time; unbounded requests never lose this
      comparison).  Additionally, an arriving request whose remaining
      budget cannot cover the expected queue wait — ``(queue_depth + 1)
      * EWMA(cold-build seconds)`` — is shed immediately as
      ``deadline_hopeless`` rather than queued to die slowly.

    The EWMA of observed cold-build latency is fed by :meth:`release`,
    which also hands the freed slot to the oldest waiter (FIFO service
    order; shedding never reorders the survivors).
    """

    def __init__(
        self,
        capacity: int,
        queue_limit: int = 8,
        policy: str = "reject-newest",
        clock: Callable[[], float] = time.monotonic,
        ewma_alpha: float = 0.3,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {SHED_POLICIES}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.policy = policy
        self._clock = clock
        self._alpha = ewma_alpha
        self._cv = threading.Condition()
        self._active = 0
        self._queue: List[_Waiter] = []
        self._seq = 0
        self._ewma = 0.0
        self._admitted = 0
        self._shed = 0

    # ------------------------------------------------------------------
    def stats(self) -> _GateStats:
        with self._cv:
            return _GateStats(
                active=self._active,
                queued=len(self._queue),
                ewma_build_seconds=self._ewma,
                admitted=self._admitted,
                shed=self._shed,
            )

    @property
    def ewma_build_seconds(self) -> float:
        with self._cv:
            return self._ewma

    def _overloaded(
        self, reason: str, queue_depth: int
    ) -> ServiceOverloaded:
        self._shed += 1
        return ServiceOverloaded(
            f"admission queue full (policy {self.policy}, "
            f"reason {reason})",
            policy=self.policy,
            shed_reason=reason,
            queue_depth=queue_depth,
            capacity=self.capacity,
        )

    def _shed_waiter(self, waiter: _Waiter, reason: str) -> None:
        waiter.state = "shed"
        waiter.shed_reason = reason
        self._queue.remove(waiter)

    # ------------------------------------------------------------------
    def acquire(self, budget: Optional[DeadlineBudget] = None) -> None:
        """Block until admitted; raise on shed or deadline expiry.

        Raises :class:`ServiceOverloaded` when this request (now or
        later, by eviction) loses to the shedding policy, and
        :class:`DeadlineExceeded` when the budget expires while queued.
        """
        remaining = budget.remaining() if budget is not None else None
        deadline_abs = (
            self._clock() + remaining
            if remaining is not None
            else float("inf")
        )
        with self._cv:
            if self._active < self.capacity and not self._queue:
                self._active += 1
                self._admitted += 1
                return
            depth = len(self._queue)
            if self.policy == "deadline" and remaining is not None:
                expected = (depth + 1) * self._ewma
                if self._ewma > 0.0 and expected > remaining:
                    raise self._overloaded("deadline_hopeless", depth)
            if depth >= self.queue_limit:
                if self.policy == "reject-newest" or not self._queue:
                    # With an empty (zero-length) queue there is nobody
                    # to evict in the arrival's favor — shed the arrival
                    # whatever the policy says.
                    raise self._overloaded("reject_newest", depth)
                if self.policy == "reject-oldest":
                    self._shed_waiter(self._queue[0], "reject_oldest")
                    self._cv.notify_all()
                else:  # deadline: the earliest absolute deadline loses
                    evict = min(self._queue, key=lambda w: w.deadline_abs)
                    if deadline_abs <= evict.deadline_abs:
                        # The arrival itself is the most hopeless
                        # (ties break against the newcomer).
                        raise self._overloaded("deadline_earliest", depth)
                    self._shed_waiter(evict, "deadline_earliest")
                    self._cv.notify_all()
            me = _Waiter(self._seq, deadline_abs)
            self._seq += 1
            self._queue.append(me)
            while me.state == "waiting":
                timeout = None
                if budget is not None:
                    rem = budget.remaining()
                    if rem is not None:
                        if rem <= 0.0:
                            self._queue.remove(me)
                            self._cv.notify_all()
                            budget.check("admission")
                        timeout = rem
                self._cv.wait(timeout=timeout)
                if me.state == "waiting" and budget is not None:
                    rem = budget.remaining()
                    if rem is not None and rem <= 0.0:
                        self._queue.remove(me)
                        self._cv.notify_all()
                        budget.check("admission")
            if me.state == "shed":
                raise self._overloaded(me.shed_reason, len(self._queue))
            self._admitted += 1

    def release(self, build_seconds: Optional[float] = None) -> None:
        """Return a slot; feed the latency EWMA; admit the next waiter."""
        with self._cv:
            self._active -= 1
            if build_seconds is not None and build_seconds >= 0.0:
                self._ewma = (
                    build_seconds
                    if self._ewma == 0.0
                    else (1 - self._alpha) * self._ewma
                    + self._alpha * build_seconds
                )
            while self._active < self.capacity and self._queue:
                nxt = self._queue.pop(0)
                nxt.state = "admitted"
                self._active += 1
            self._cv.notify_all()
