"""Pluggable arrival processes for the streaming workload driver.

The driver asks an arrival process for request timestamps; the process
shapes the *offered load* (steady, bursty, or feedback-limited) while
the request mix is chosen independently (Zipf over the pattern corpus).
Processes register by name in :data:`ARRIVAL_PROCESSES` so the CLI and
bench can select them with a string, and new ones plug in with the
:func:`register_arrival` decorator — the registry pattern the schedule
algorithms already use.

Every process is seeded and deterministic: the same (name, rate, seed)
yields the same timestamp sequence on every run, which is what lets a
bench assert its hit-rate numbers in CI.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

__all__ = [
    "ARRIVAL_PROCESSES",
    "register_arrival",
    "make_arrivals",
    "arrival_names",
    "PoissonArrivals",
    "BurstyArrivals",
    "ClosedLoopArrivals",
]

#: name -> factory(rate, seed) for the driver and CLI.
ARRIVAL_PROCESSES: Dict[str, Callable[..., "ArrivalProcess"]] = {}


def register_arrival(name: str):
    """Class decorator: add an arrival process to the registry."""

    def deco(cls):
        ARRIVAL_PROCESSES[name] = cls
        cls.registry_name = name
        return cls

    return deco


def arrival_names() -> List[str]:
    """Registered process names, registration order."""
    return list(ARRIVAL_PROCESSES)


def make_arrivals(name: str, rate: float, seed: int = 0) -> "ArrivalProcess":
    """Instantiate a registered arrival process by name."""
    try:
        factory = ARRIVAL_PROCESSES[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; choose from "
            f"{arrival_names()}"
        ) from None
    return factory(rate=rate, seed=seed)


class ArrivalProcess:
    """Base: a seeded generator of monotone arrival timestamps.

    ``closed`` distinguishes feedback-limited processes: an open process
    fixes its timestamps in advance (arrivals ignore service progress),
    a closed one re-times each arrival after the previous response.
    """

    closed = False
    registry_name = "?"

    def __init__(self, rate: float, seed: int = 0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.seed = seed

    def times(self, n: int) -> List[float]:
        """``n`` monotonically non-decreasing arrival timestamps."""
        raise NotImplementedError


@register_arrival("poisson")
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps at ``rate``/s."""

    def times(self, n: int) -> List[float]:
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return np.cumsum(gaps).tolist()


@register_arrival("bursty")
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson: bursts at ``burst_factor``x the mean.

    The process alternates exponentially-long ON and OFF periods
    (``duty`` fraction ON); arrivals only occur during ON, at a rate
    inflated so the long-run mean still matches ``rate``.  This is the
    classic interrupted-Poisson shape of synchronized tenants — the mix
    a serving layer's dedup/caching tiers must absorb.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        duty: float = 0.25,
        cycle: float = 1.0,
    ):
        super().__init__(rate, seed)
        if not 0 < duty < 1:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        if cycle <= 0:
            raise ValueError(f"cycle must be positive, got {cycle}")
        self.duty = duty
        self.cycle = cycle

    @property
    def burst_factor(self) -> float:
        return 1.0 / self.duty

    def times(self, n: int) -> List[float]:
        rng = np.random.default_rng(self.seed)
        out: List[float] = []
        t = 0.0
        on_rate = self.rate * self.burst_factor
        while len(out) < n:
            on_len = rng.exponential(self.cycle * self.duty)
            end = t + on_len
            while len(out) < n:
                t += rng.exponential(1.0 / on_rate)
                if t > end:
                    t = end
                    break
                out.append(t)
            t += rng.exponential(self.cycle * (1.0 - self.duty))
        return out[:n]


@register_arrival("closed-loop")
class ClosedLoopArrivals(ArrivalProcess):
    """Fixed client population with think time: load follows service.

    ``rate`` is interpreted as the per-client request rate while
    thinking (think time = 1/rate); the driver spaces each client's
    next arrival a think-gap after its previous *response*, so offered
    load self-limits when the service slows — the classic closed-loop
    benchmark shape.  :meth:`times` returns the think gaps; the driver
    applies them relative to completions.
    """

    closed = True

    def __init__(self, rate: float, seed: int = 0, clients: int = 4):
        super().__init__(rate, seed)
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        self.clients = clients

    def times(self, n: int) -> List[float]:
        rng = np.random.default_rng(self.seed)
        return rng.exponential(1.0 / self.rate, size=n).tolist()
