"""Streaming workload driver and service benchmark.

Models a serving front end under sustained traffic: a corpus of
distinct communication patterns (the paper's Table 11 synthetic grid,
optionally the Table 12 application patterns), a Zipf-distributed
request mix over that corpus (a few hot patterns dominate — the shape
that makes a schedule cache an artery rather than an ornament), and a
pluggable arrival process shaping the offered load.

The driver serves every request through a :class:`Scheduler`, measures
per-request service latency on the wall clock, and replays the arrival
timestamps through a virtual single-queue model to get sojourn times —
so a bursty arrival process shows up in p99 without the bench ever
sleeping.  The *naive* baseline rebuilds every request cold through the
same builder registry, giving an honest schedules/sec speedup for the
cache + dedup + warm tiers.

The JSON document (schema ``repro-bench-service/3``)::

    {
      "schema": "repro-bench-service/3",
      "scale": "full" | "quick" | "custom",
      "workloads": {
        "zipf_n16_s1.1_poisson": {
          "wall_seconds": ...,         # serving wall clock
          "naive_wall_seconds": ...,   # cold-rebuild-everything wall
          "speedup": ...,              # naive / served
          "schedules_per_sec": ...,
          "p50_ms": ..., "p99_ms": ...,  # sojourn times, virtual queue
          "hit_rate": ..., "warm_hit_rate": ...,
          "requests": ..., "corpus": ..., "lint_failures": 0,
          "counters": {"service.hits": ..., ...},
          "tier_latency_ms": {         # per serving tier (schema /2)
            "hit": {"count": ..., "p50": ..., "p90": ..., "p99": ...},
            ...
          },
          "sojourn_histogram": {       # virtual-queue sojourn (schema /2)
            "count": ..., "p50_ms": ..., "p90_ms": ..., "p99_ms": ...,
            "state": {...}             # exact log-bucket Histogram state
          },
          "deadline_miss_rate": 0.0,   # guard view (schema /3)
          "shed_rate": 0.0
        }, ...
      }
    }

Schema ``/2`` adds the SLO view — per-tier latency percentiles read
from the scheduler's tier-labeled histograms and the sojourn-time
distribution as an exact :class:`~repro.obs.metrics.Histogram` state —
on top of ``/1``'s shared fields.  Schema ``/3`` adds the guard view:
the fraction of offered requests that missed their deadline
(``deadline_miss_rate``) or were shed by admission control
(``shed_rate``); both are exactly ``0.0`` when the cell runs without a
:class:`~repro.service.guard.GuardConfig`, and the serving path is
byte-identical to ``/2`` in that case.  ``perfcmp`` compares across
versions on the shared fields.

``repro serve-bench`` drives this and fails (exit 1) when a served
schedule fails the linter or the hit rate is zero — the regression a
serving layer must never ship.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..machine.params import MachineConfig
from ..schedules.irregular import IRREGULAR_ALGORITHMS
from ..schedules.pattern import CommPattern
from ..schedules.validate import lint_schedule
from .arrivals import make_arrivals
from .guard import DeadlineExceeded, GuardConfig, ServiceError, ServiceOverloaded
from .scheduler import SOURCES, Scheduler, ServiceResponse
from .store import ScheduleStore

__all__ = [
    "SERVICE_SCHEMA",
    "pattern_corpus",
    "zipf_mix",
    "drift_variant",
    "request_stream",
    "drive_workload",
    "run_service_bench",
    "render_service_bench",
    "write_service_bench",
]

SERVICE_SCHEMA = "repro-bench-service/3"

#: Table 11's synthetic grid: densities x message sizes.
_DENSITIES = (0.10, 0.25, 0.50, 0.75)
_SIZES = (16, 64, 256, 1024)


def pattern_corpus(
    nprocs: int,
    size: int,
    seed: int = 0,
    include_apps: bool = False,
) -> List[Tuple[str, CommPattern]]:
    """``size`` distinct named patterns in the Table 11/12 style.

    Sweeps the paper's density x message-size grid with fresh generator
    seeds until ``size`` patterns exist; ``include_apps`` prepends the
    Table 12 application patterns (mesh -> RCB -> halo), which cost a
    partitioning run each and so default off for quick benches.
    """
    if size < 1:
        raise ValueError(f"corpus size must be >= 1, got {size}")
    corpus: List[Tuple[str, CommPattern]] = []
    if include_apps:
        from ..apps.workloads import paper_workload, workload_names

        for name in workload_names():
            if len(corpus) >= size:
                break
            corpus.append((name, paper_workload(name, nprocs).pattern))
    gen_seed = seed
    while len(corpus) < size:
        for density in _DENSITIES:
            for nbytes in _SIZES:
                if len(corpus) >= size:
                    break
                corpus.append(
                    (
                        f"t11_d{int(density * 100)}_b{nbytes}_s{gen_seed}",
                        CommPattern.synthetic(
                            nprocs, density, nbytes, seed=gen_seed
                        ),
                    )
                )
        gen_seed += 1
    return corpus


def zipf_mix(
    n_requests: int, corpus_size: int, skew: float, seed: int = 0
) -> List[int]:
    """Zipf(``skew``)-distributed corpus indices for each request.

    Popularity rank r (0 = hottest) gets probability proportional to
    ``1 / (r + 1) ** skew``; ranks are assigned to corpus indices by a
    seeded shuffle so popularity is independent of generator order.
    ``skew = 0`` degenerates to uniform.
    """
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    rng = np.random.default_rng(seed)
    ranks = rng.permutation(corpus_size)
    weights = 1.0 / np.arange(1, corpus_size + 1, dtype=float) ** skew
    probs = weights / weights.sum()
    draws = rng.choice(corpus_size, size=n_requests, p=probs)
    return [int(ranks[d]) for d in draws]


def drift_variant(pattern: CommPattern, seed: int) -> CommPattern:
    """One-cell drift: a single message doubles in size.

    Models the per-iteration pattern drift of an adaptive application
    (a halo message grows after repartitioning); the result is a
    near-miss of the original at edit distance 1, i.e. warm-start bait.
    """
    rng = np.random.default_rng(seed)
    m = pattern.matrix.copy()
    nz = np.argwhere(m)
    i, j = nz[int(rng.integers(len(nz)))]
    m[i, j] = int(m[i, j]) * 2
    return CommPattern(m)


def request_stream(
    corpus: List[Tuple[str, CommPattern]],
    mix: List[int],
    drift: float = 0.0,
    seed: int = 0,
) -> List[Tuple[str, CommPattern]]:
    """Resolve a Zipf mix into (name, pattern) requests with drift.

    A ``drift`` fraction of requests swap in the drifted variant of
    their pattern — near-misses that exercise the warm-start tier.
    Each corpus entry has one fixed variant, so repeated drifted
    requests stay memoizable the way a real iterating application's
    would.
    """
    if not 0.0 <= drift <= 1.0:
        raise ValueError(f"drift must be in [0, 1], got {drift}")
    variants: Dict[int, Tuple[str, CommPattern]] = {}
    rng = np.random.default_rng(seed + 1)
    drifted = rng.random(len(mix)) < drift
    stream: List[Tuple[str, CommPattern]] = []
    for idx, use_variant in zip(mix, drifted):
        if use_variant:
            if idx not in variants:
                name, pattern = corpus[idx]
                variants[idx] = (
                    f"{name}~drift",
                    drift_variant(pattern, seed + idx),
                )
            stream.append(variants[idx])
        else:
            stream.append(corpus[idx])
    return stream


def _sojourn_times(
    arrival: str,
    rate: float,
    seed: int,
    service_s: List[float],
    clients: int = 4,
) -> List[float]:
    """Virtual-queue sojourn time per request (seconds).

    Open processes fix arrival timestamps up front; a single virtual
    server works them off in order (completion ``C_i = max(A_i,
    C_{i-1}) + S_i``), so bursts queue and the tail grows.  The
    closed-loop process instead re-times each client's next arrival a
    think-gap after its previous completion, so sojourn stays near the
    bare service time — load follows capacity.
    """
    n = len(service_s)
    proc = make_arrivals(arrival, rate, seed)
    gaps = proc.times(n)
    out: List[float] = []
    if proc.closed:
        client_free = [0.0] * clients
        server_free = 0.0
        for i, s in enumerate(service_s):
            c = i % clients
            a = client_free[c] + gaps[i]
            start = max(a, server_free)
            done = start + s
            server_free = done
            client_free[c] = done
            out.append(done - a)
    else:
        prev_done = 0.0
        for a, s in zip(gaps, service_s):
            done = max(a, prev_done) + s
            prev_done = done
            out.append(done - a)
    return out


def drive_workload(
    scheduler: Scheduler,
    stream: List[Tuple[str, CommPattern]],
    algorithm: str,
    config: MachineConfig,
    progress: Optional[Callable[[str], None]] = None,
    deadline: Optional[float] = None,
    errors: Optional[List[ServiceError]] = None,
    served: Optional[List[Tuple[str, CommPattern]]] = None,
) -> Tuple[List[ServiceResponse], float]:
    """Serve the request stream; returns responses and serving wall.

    When ``errors`` is given, structured :class:`ServiceError` failures
    (deadline misses, shed requests, crashes) are collected there
    instead of propagating — the bench keeps serving the rest of the
    stream and reports miss/shed rates.  Without it, any guard failure
    raises (the pre-guard contract).  ``served``, when given, receives
    the stream entry of each successful response in order, so callers
    can pair responses with patterns even after drops.
    """
    responses: List[ServiceResponse] = []
    t0 = time.perf_counter()
    for i, entry in enumerate(stream):
        try:
            responses.append(
                scheduler.request(
                    entry[1], algorithm, config, deadline=deadline
                )
            )
            if served is not None:
                served.append(entry)
        except ServiceError as exc:
            if errors is None:
                raise
            errors.append(exc)
        if progress is not None and (i + 1) % 1000 == 0:
            progress(f"  served {i + 1}/{len(stream)} requests")
    return responses, time.perf_counter() - t0


def _naive_wall(
    stream: List[Tuple[str, CommPattern]], algorithm: str
) -> float:
    """Wall clock of rebuilding every request cold (no cache, no dedup)."""
    builder = IRREGULAR_ALGORITHMS[algorithm]
    t0 = time.perf_counter()
    for _, pattern in stream:
        builder(pattern)
    return time.perf_counter() - t0


def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def run_service_cell(
    nprocs: int,
    corpus_size: int,
    requests: int,
    skew: float = 1.1,
    arrival: str = "poisson",
    algorithm: str = "greedy",
    rate: float = 200.0,
    drift: float = 0.1,
    workers: int = 0,
    warm_edit_limit: int = 4,
    seed: int = 0,
    include_apps: bool = False,
    measure_naive: bool = True,
    store: Optional[ScheduleStore] = None,
    progress: Optional[Callable[[str], None]] = None,
    guard: Optional[GuardConfig] = None,
    deadline: Optional[float] = None,
) -> Dict[str, object]:
    """One bench cell: corpus -> Zipf stream -> scheduler -> metrics.

    ``guard``/``deadline`` arm the reliability guardrails for the cell;
    the default (both None) serves exactly as before and reports
    ``deadline_miss_rate`` / ``shed_rate`` of 0.0.
    """
    corpus = pattern_corpus(
        nprocs, corpus_size, seed=seed, include_apps=include_apps
    )
    mix = zipf_mix(requests, len(corpus), skew, seed=seed)
    stream = request_stream(corpus, mix, drift=drift, seed=seed)
    config = MachineConfig(nprocs)
    if deadline is not None and guard is None:
        guard = GuardConfig()  # a deadline needs the guard machinery
    errors: List[ServiceError] = []
    served: List[Tuple[str, CommPattern]] = []
    guarded = guard is not None
    with Scheduler(
        store=store,
        workers=workers,
        warm_edit_limit=warm_edit_limit,
        guard=guard,
    ) as scheduler:
        responses, wall = drive_workload(
            scheduler,
            stream,
            algorithm,
            config,
            progress,
            deadline=deadline,
            errors=errors if guarded else None,
            served=served if guarded else None,
        )
        counters = scheduler.stats()
    if not guarded:
        served = stream

    lint_failures = 0
    # Memoized per (schedule, pattern) *pair* — the same serialized
    # schedule can legitimately pair with distinct patterns (dedup over
    # isomorphic traffic), and each pairing needs its own verdict.
    seen: Dict[Tuple[str, bytes], bool] = {}
    for resp, (_, pattern) in zip(responses, served):
        pair = (resp.serialized, pattern.matrix.tobytes())
        ok = seen.get(pair)
        if ok is None:
            ok = lint_schedule(resp.schedule, pattern).ok
            seen[pair] = ok
        lint_failures += not ok

    service_s = [r.latency for r in responses]
    sojourn = _sojourn_times(arrival, rate, seed, service_s)
    n = len(responses)
    # The scheduler registry outlives the closed scheduler; the virtual
    # queue is the driver's, so the driver owns the sojourn histogram.
    registry = scheduler.metrics
    sojourn_hist = registry.histogram("service.sojourn_seconds")
    for v in sojourn:
        sojourn_hist.observe(v)
    tier_latency_ms: Dict[str, Dict[str, object]] = {}
    for tier in SOURCES:
        h = registry.histograms.get(f"service.latency.{tier}")
        if h is not None and h.count:
            tier_latency_ms[tier] = {
                "count": h.count,
                "p50": round(h.p50 * 1e3, 4),
                "p90": round(h.p90 * 1e3, 4),
                "p99": round(h.p99 * 1e3, 4),
            }
    hits = counters.get("service.hits", 0) + counters.get(
        "service.inflight_dedup", 0
    )
    warm = counters.get("service.warm_hits", 0) + counters.get(
        "service.iso_hits", 0
    )
    naive = _naive_wall(stream, algorithm) if measure_naive else 0.0
    offered = len(stream)
    misses = sum(isinstance(e, DeadlineExceeded) for e in errors)
    sheds = sum(isinstance(e, ServiceOverloaded) for e in errors)
    return {
        "wall_seconds": round(wall, 4),
        "naive_wall_seconds": round(naive, 4),
        "speedup": round(naive / wall, 2) if wall > 0 and naive > 0 else 0.0,
        "schedules_per_sec": round(n / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(_percentile(sojourn, 50) * 1e3, 4),
        "p99_ms": round(_percentile(sojourn, 99) * 1e3, 4),
        "hit_rate": round(hits / n, 4) if n else 0.0,
        "warm_hit_rate": round(warm / n, 4) if n else 0.0,
        "requests": n,
        "corpus": len(corpus),
        "lint_failures": lint_failures,
        "counters": counters,
        "tier_latency_ms": tier_latency_ms,
        "sojourn_histogram": {
            "count": sojourn_hist.count,
            "p50_ms": round(sojourn_hist.p50 * 1e3, 4),
            "p90_ms": round(sojourn_hist.p90 * 1e3, 4),
            "p99_ms": round(sojourn_hist.p99 * 1e3, 4),
            "state": sojourn_hist.state(),
        },
        "deadline_miss_rate": round(misses / offered, 4) if offered else 0.0,
        "shed_rate": round(sheds / offered, 4) if offered else 0.0,
    }


def run_service_bench(
    quick: bool = False,
    skew: float = 1.1,
    arrival: str = "poisson",
    algorithm: str = "greedy",
    drift: float = 0.1,
    workers: int = 0,
    seed: int = 0,
    corpus_size: Optional[int] = None,
    requests: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    guard: Optional[GuardConfig] = None,
    deadline: Optional[float] = None,
) -> Dict[str, object]:
    """The canonical service bench: Zipf mix at N in {8, 16}.

    ``quick`` shrinks corpus and request counts to CI scale;
    ``corpus_size`` / ``requests`` override the per-cell defaults.
    The committed artifact runs unguarded (``guard=None``) — arming
    ``guard``/``deadline`` is for SLO experiments, not the baseline.
    """
    cells = (
        ((8, 50, 400), (16, 50, 400))
        if quick
        else ((8, 64, 24000), (16, 64, 24000))
    )
    # Resolve scale before the loop below rebinds corpus_size/requests.
    if corpus_size is not None or requests is not None:
        scale = "custom"
    else:
        scale = "quick" if quick else "full"
    cells = tuple(
        (n, corpus_size or c, requests or r) for n, c, r in cells
    )
    workloads: Dict[str, object] = {}
    for nprocs, corpus_size, requests in cells:
        name = f"zipf_n{nprocs}_s{skew:g}_{arrival}"
        if progress is not None:
            progress(
                f"{name}: {requests} requests over {corpus_size} patterns"
            )
        workloads[name] = run_service_cell(
            nprocs=nprocs,
            corpus_size=corpus_size,
            requests=requests,
            skew=skew,
            arrival=arrival,
            algorithm=algorithm,
            drift=drift,
            workers=workers,
            seed=seed,
            progress=progress,
            guard=guard,
            deadline=deadline,
        )
    return {"schema": SERVICE_SCHEMA, "scale": scale, "workloads": workloads}


def write_service_bench(
    bench: Dict[str, object],
    path=None,
    root=None,
    force: bool = False,
):
    """Persist one service BENCH document to its scale-appropriate path.

    Quick and custom runs land in ``BENCH_service_quick.json`` so a CI
    smoke run can never clobber the committed full-scale artifact; a
    full run replaces ``BENCH_service.json``.  Passing ``path``
    overrides the routing, but overwriting an existing full-scale
    artifact with a non-full document still refuses unless ``force``
    (the exact accident the side path exists to prevent).  Returns the
    path written.
    """
    scale = bench.get("scale")
    if path is None:
        name = (
            "BENCH_service.json"
            if scale == "full"
            else "BENCH_service_quick.json"
        )
        path = Path(root or ".") / name
    path = Path(path)
    if path.exists() and scale != "full" and not force:
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and existing.get("scale") == "full":
            raise ValueError(
                f"refusing to overwrite the full-scale artifact {path} "
                f"with a {scale!r} run; use --force to override"
            )
    path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    return path


def render_service_bench(bench: Dict[str, object]) -> str:
    """Fixed-width report, one line per workload."""
    lines = [
        f"{'workload':<28} {'req/s':>8} {'speedup':>8} {'hit':>6} "
        f"{'warm':>6} {'p50 ms':>8} {'p99 ms':>8}  lint"
    ]
    for name, wl in bench["workloads"].items():  # type: ignore[union-attr]
        lines.append(
            f"{name:<28} {wl['schedules_per_sec']:>8.0f} "
            f"{wl['speedup']:>7.1f}x {wl['hit_rate']:>6.1%} "
            f"{wl['warm_hit_rate']:>6.1%} {wl['p50_ms']:>8.3f} "
            f"{wl['p99_ms']:>8.3f}  "
            + ("ok" if not wl["lint_failures"] else f"{wl['lint_failures']} FAIL")
        )
    return "\n".join(lines)
