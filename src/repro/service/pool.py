"""Process-pool worker tier with an inline fallback.

One helper serves every process-parallel consumer in the repository:
the scheduling service's cold-build tier and the chaos campaign's
``--jobs N`` replication.  The contract is deliberately narrow:

* ``jobs == 0`` (the default) executes everything inline in the calling
  process — byte-for-byte the sequential behavior, no pickling, no
  subprocesses, deterministic under any tracer;
* ``jobs >= 1`` fans work out over a :class:`ProcessPoolExecutor`, and
  :meth:`WorkerPool.map_ordered` always returns results in *input*
  order, so a parallel campaign renders the identical report.

Worker functions must be module-level (picklable) and pure: everything
they need travels in the argument tuple, nothing through module state
mutated by the parent (a forked worker may or may not see it).
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Bounded process pool; ``jobs=0`` degenerates to inline execution."""

    def __init__(self, jobs: int = 0):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        if self.jobs > 0:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def respawn(self) -> None:
        """Replace the executor after a worker crash.

        A :class:`concurrent.futures.process.BrokenProcessPool` poisons
        the whole executor — every subsequent submit fails instantly.
        Recovery is a swap: discard the broken executor without waiting
        on it (its workers are already dead) and stand up a fresh one.
        Inline pools (``jobs == 0``) have no executor and nothing to do.
        """
        if self.jobs <= 0:
            return
        old, self._executor = self._executor, None
        if old is not None:
            old.shutdown(wait=False)
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs
        )

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., R], *args) -> "concurrent.futures.Future[R]":
        """One task; inline mode returns an already-resolved future."""
        if self._executor is not None:
            return self._executor.submit(fn, *args)
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 — future carries it
            future.set_exception(exc)
        return future

    def map_ordered(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        progress: Optional[Callable[[R], None]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        ``progress`` is invoked once per result *in input order* (even
        when workers finish out of order), so observable output is
        identical at any job count.
        """
        if self._executor is None:
            out: List[R] = []
            for item in items:
                r = fn(item)
                if progress is not None:
                    progress(r)
                out.append(r)
            return out
        futures = [self._executor.submit(fn, item) for item in items]
        results: List[R] = []
        for f in futures:
            r = f.result()
            if progress is not None:
                progress(r)
            results.append(r)
        return results
