"""Per-request tracing for the scheduling service.

Every :meth:`repro.service.Scheduler.request` fills one
:class:`RequestTrace`: which tier served it, how long each stage took,
and whether it coalesced onto another thread's build.  The scheduler
attaches the trace to the :class:`~repro.service.ServiceResponse` and
feeds the stage timings into tier-labeled histograms
(``service.latency.<tier>``, ``service.build_seconds``, ...), so the
bench's SLO view and `repro metrics` both read straight from the
registry with no extra bookkeeping in callers.

The trace is carried through the serving tiers in a ``threading.local``
slot on the scheduler — the tier methods are deep call chains (the
single-flight path re-enters the cached tiers), and threading the
object through every signature would couple each tier to the
observability layer instead of letting stages record into whatever
trace is current.  One request = one thread = one trace; concurrent
requests never share a slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RequestTrace"]


@dataclass
class RequestTrace:
    """Stage timings and provenance for one served request.

    All durations are wall-clock seconds on the calling thread.  Stages
    a request never entered stay 0.0 — an exact hit has no build or
    single-flight time, and only worker-pool builds (``workers > 0``)
    have ``worker_build_seconds``.
    """

    #: "hit" | "isomorphic" | "warm" | "cold" (set when the response is
    #: finalized).
    source: str = ""
    #: End-to-end request latency.
    latency: float = 0.0
    #: Virtual-queue sojourn (set by the bench driver, which owns the
    #: arrival process; the scheduler itself has no queue).
    sojourn: float = 0.0
    #: Time spent waiting on another thread's in-flight build.
    singleflight_wait: float = 0.0
    #: Parent-side cold-build time, including the pool round-trip.
    build_seconds: float = 0.0
    #: Child-process build-span seconds shipped back with the result
    #: (0.0 for inline builds — those are already parent time).
    worker_build_seconds: float = 0.0
    #: Total lint/validation time across tiers for this request.
    lint_seconds: float = 0.0
    #: True when this request coalesced onto another thread's build.
    deduped: bool = False
    #: Warm-start edit distance (0 for other tiers).
    edit_distance: int = 0
    #: Deadline budget in seconds (0.0 when the request had none).
    deadline: float = 0.0
    #: Time spent queued at the admission gate before the cold build.
    admission_wait: float = 0.0
    #: Build retries actually performed (crash or transient failure).
    retries: int = 0
    #: Total backoff sleep between retries.
    backoff_seconds: float = 0.0
    #: Worker-process crashes this request's build absorbed.
    worker_crashes: int = 0
    #: True when the worker tier was abandoned and the schedule was
    #: rebuilt inline so waiters still got a result.
    inline_failover: bool = False
    #: Why admission shed this request ("" when it was not shed).
    shed_reason: str = ""
    #: Circuit-breaker state observed when the request finished
    #: ("" when the scheduler has no guard).
    breaker_state: str = ""

    def to_json(self) -> Dict[str, object]:
        """Flat JSON view (stable key order) for logs and tests."""
        return {
            "source": self.source,
            "latency": self.latency,
            "sojourn": self.sojourn,
            "singleflight_wait": self.singleflight_wait,
            "build_seconds": self.build_seconds,
            "worker_build_seconds": self.worker_build_seconds,
            "lint_seconds": self.lint_seconds,
            "deduped": self.deduped,
            "edit_distance": self.edit_distance,
            "deadline": self.deadline,
            "admission_wait": self.admission_wait,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "worker_crashes": self.worker_crashes,
            "inline_failover": self.inline_failover,
            "shed_reason": self.shed_reason,
            "breaker_state": self.breaker_state,
        }
