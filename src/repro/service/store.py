"""Content-addressed schedule store: in-memory + JSON-on-disk tiers.

Entries are keyed by a :class:`~repro.service.keys.ScheduleKey` digest
and carry the *serialized* schedule (via
:mod:`repro.schedules.serialize`) plus the exact pattern the schedule
was built for — the digest may be a canonical-form hash shared by
several isomorphic patterns, and serving the wrong labeling is a
correctness bug, so lookups always get the stored pattern back for
comparison.

The disk tier is one JSON file per entry under the store directory,
written atomically (unique temp file + ``os.replace``) so a crashed run
never truncates an entry; a partial write torn by a crash lives only in
a ``.tmp`` file the loader's ``*.json`` glob never matches.  Corrupt or
forged files are **quarantined** — moved to a ``corrupt/`` sibling
directory and counted (``service.store.quarantined``,
:attr:`ScheduleStore.quarantined`) — never trusted and never silently
reloaded on the next start.  Hit/miss traffic is reported through
``repro.obs`` counters (``service.store.*``).
"""

from __future__ import annotations

import functools
import json
import os
import sys
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..schedules.pattern import CommPattern
from .keys import ScheduleKey

__all__ = ["StoreEntry", "ScheduleStore"]

#: On-disk entry format marker.
_ENTRY_FORMAT = "repro-schedule-entry"
_ENTRY_VERSION = 1


@dataclass(frozen=True)
class StoreEntry:
    """One cached build: key, exact pattern, serialized schedule."""

    key: ScheduleKey
    #: Exact (N, N) byte matrix the schedule covers.
    pattern: np.ndarray
    #: Canonical seating used when the key is canonical (``order[k]`` =
    #: original rank at canonical position ``k``), else None.
    order: Optional[np.ndarray]
    #: Serialized schedule (repro.schedules.serialize JSON).
    serialized: str
    #: Store-and-forward schedules are not warm-start-adaptable.
    staged: bool

    @functools.cached_property
    def pattern_bytes(self) -> bytes:
        """Raw matrix bytes, the hot path's exact-match identity."""
        return np.ascontiguousarray(self.pattern).tobytes()

    def to_json(self) -> str:
        doc = {
            "format": _ENTRY_FORMAT,
            "version": _ENTRY_VERSION,
            "key": {
                "algorithm": self.key.algorithm,
                "machine": self.key.machine,
                "pattern": self.key.pattern,
                "params": self.key.params,
                "canonical": self.key.canonical,
                "nprocs": self.key.nprocs,
                "version": self.key.version,
            },
            "pattern": self.pattern.tolist(),
            "order": None if self.order is None else self.order.tolist(),
            "serialized": self.serialized,
            "staged": self.staged,
        }
        return json.dumps(doc, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "StoreEntry":
        doc = json.loads(text)
        if not isinstance(doc, dict) or doc.get("format") != _ENTRY_FORMAT:
            raise ValueError("not a schedule-store entry")
        if doc.get("version") != _ENTRY_VERSION:
            raise ValueError(
                f"unsupported entry version {doc.get('version')!r}"
            )
        key = ScheduleKey(**doc["key"])
        order = doc.get("order")
        return cls(
            key=key,
            pattern=np.array(doc["pattern"], dtype=np.int64),
            order=None if order is None else np.array(order, dtype=np.int64),
            serialized=str(doc["serialized"]),
            staged=bool(doc["staged"]),
        )


class ScheduleStore:
    """Thread-safe two-tier (memory + optional disk) schedule cache."""

    def __init__(self, path: Optional[Path] = None):
        self._lock = threading.Lock()
        self._mem: Dict[str, StoreEntry] = {}
        #: (machine, algorithm, params, nprocs) -> digests, for the
        #: near-miss scan of the warm-start path.
        self._buckets: Dict[Tuple[str, str, str, int], List[str]] = {}
        self._path = Path(path) if path is not None else None
        #: Corrupt/forged disk entries moved to ``corrupt/`` at load.
        self.quarantined = 0
        if self._path is not None and self._path.is_dir():
            self._load_disk()

    # ------------------------------------------------------------------
    def _bucket_key(self, key: ScheduleKey) -> Tuple[str, str, str, int]:
        return (key.machine, key.algorithm, key.params, key.nprocs)

    def _index(self, digest: str, entry: StoreEntry) -> None:
        self._mem[digest] = entry
        self._buckets.setdefault(self._bucket_key(entry.key), []).append(
            digest
        )

    def _quarantine(self, p: Path) -> None:
        """Move a corrupt/forged file aside instead of trusting it.

        Quarantined files land under ``<store>/corrupt/`` with their
        original name (a collision keeps both under a numbered suffix),
        outside the loader's ``*.json`` glob — so the evidence survives
        for inspection but can never be served, and the next start does
        not re-warn about the same file forever.
        """
        assert self._path is not None
        self.quarantined += 1
        obs.count("service.store.quarantined")
        qdir = self._path / "corrupt"
        dest = qdir / p.name
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            n = 1
            while dest.exists():
                dest = qdir / f"{p.name}.{n}"
                n += 1
            os.replace(p, dest)
        except OSError:
            # Read-only store or the file vanished: it stays counted
            # and untrusted either way.
            pass

    def _load_disk(self) -> None:
        assert self._path is not None
        for p in sorted(self._path.glob("*.json")):
            try:
                entry = StoreEntry.from_json(p.read_text())
            except (OSError, ValueError, KeyError, TypeError):
                self._quarantine(p)
                continue
            if entry.key.digest != p.stem:
                self._quarantine(p)  # renamed/forged: content must name itself
                continue
            self._index(p.stem, entry)
        if self.quarantined:
            print(
                f"warning: schedule store {self._path}: quarantined "
                f"{self.quarantined} corrupt entr(y/ies) under "
                f"{self._path / 'corrupt'}",
                file=sys.stderr,
            )

    # ------------------------------------------------------------------
    def get(self, key: ScheduleKey) -> Optional[StoreEntry]:
        """Entry stored under ``key``'s digest, or None."""
        with self._lock:
            entry = self._mem.get(key.digest)
        if entry is not None:
            obs.count("service.store.hit")
        else:
            obs.count("service.store.miss")
        return entry

    def put(self, entry: StoreEntry) -> None:
        """Insert (or overwrite) one entry; persists when disk-backed."""
        digest = entry.key.digest
        with self._lock:
            fresh = digest not in self._mem
            if fresh:
                self._index(digest, entry)
            else:
                self._mem[digest] = entry
        obs.count("service.store.insert")
        if self._path is not None:
            self._write_disk(digest, entry)

    def _write_disk(self, digest: str, entry: StoreEntry) -> None:
        assert self._path is not None
        self._path.mkdir(parents=True, exist_ok=True)
        final = self._path / f"{digest}.json"
        fd, tmp = tempfile.mkstemp(
            dir=str(self._path), prefix=f".{digest[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(entry.to_json())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def near_misses(
        self, key: ScheduleKey, pattern: CommPattern, limit: int
    ) -> List[Tuple[int, StoreEntry]]:
        """Warm-start candidates: same bucket, close pattern, not staged.

        Returns ``(edit_distance, entry)`` pairs with distance in
        ``1..limit`` (0 would be an exact hit), sorted by distance then
        by key digest so the choice is deterministic.  Distance is the
        number of differing matrix cells — the natural metric for
        "one more halo neighbour" / "one message grew" drift.
        """
        with self._lock:
            digests = list(self._buckets.get(self._bucket_key(key), ()))
            entries = [self._mem[d] for d in digests if d in self._mem]
        out: List[Tuple[int, StoreEntry]] = []
        for entry in entries:
            if entry.staged:
                continue
            if entry.pattern.shape != pattern.matrix.shape:
                continue
            dist = int(np.count_nonzero(entry.pattern != pattern.matrix))
            if 1 <= dist <= limit:
                out.append((dist, entry))
        out.sort(key=lambda de: (de[0], de[1].key.digest))
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def clear(self) -> None:
        """Drop both tiers (disk files included)."""
        with self._lock:
            self._mem.clear()
            self._buckets.clear()
            if self._path is not None and self._path.is_dir():
                for p in self._path.glob("*.json"):
                    try:
                        p.unlink()
                    except OSError:
                        pass
