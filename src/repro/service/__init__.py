"""repro.service — scheduling as a service.

The paper builds each schedule once; a production front end builds them
millions of times.  This package wraps schedule construction in a
serving layer:

* :mod:`repro.service.keys` — content addressing with canonical-form
  pattern hashing (relabel-isomorphic requests share an entry);
* :mod:`repro.service.store` — thread-safe in-memory + JSON-on-disk
  :class:`ScheduleStore` of serialized schedules;
* :mod:`repro.service.scheduler` — the :class:`Scheduler` service:
  exact hits, isomorphic relabel hits, warm-start repair on near-miss
  patterns, single-flight dedup, and a process-pool cold-build tier;
* :mod:`repro.service.pool` — the shared :class:`WorkerPool` (also the
  engine of ``repro chaos --jobs``);
* :mod:`repro.service.arrivals` — pluggable arrival-process registry
  (Poisson, bursty, closed-loop);
* :mod:`repro.service.driver` — Zipf streaming workload driver and the
  ``BENCH_service.json`` bench (schema ``repro-bench-service/3``);
* :mod:`repro.service.guard` — reliability guardrails: per-request
  deadline budgets, seeded-jitter retry backoff, a worker circuit
  breaker, and admission control / load shedding;
* :mod:`repro.service.chaos` — the seeded ``serve-chaos`` fault
  campaign exercising all of the above.

Quick start::

    from repro.service import Scheduler
    from repro.schedules import CommPattern

    sched = Scheduler()
    resp = sched.request(CommPattern.synthetic(16, 0.4, 512), "greedy")
    resp.source      # "cold" the first time, "hit" after
"""

from .arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
    arrival_names,
    make_arrivals,
    register_arrival,
)
from .chaos import (
    SERVICE_CHAOS_SCHEMA,
    ServiceChaosReport,
    ServiceChaosRun,
    render_service_chaos,
    run_service_campaign,
    write_service_chaos,
)
from .driver import (
    SERVICE_SCHEMA,
    drift_variant,
    pattern_corpus,
    render_service_bench,
    request_stream,
    run_service_bench,
    run_service_cell,
    write_service_bench,
    zipf_mix,
)
from .guard import (
    BREAKER_STATES,
    SHED_POLICIES,
    AdmissionGate,
    BackoffPolicy,
    CircuitBreaker,
    DeadlineBudget,
    DeadlineExceeded,
    GuardConfig,
    ServiceError,
    ServiceOverloaded,
    TransientBuildError,
    WorkerCrashed,
)
from .keys import (
    KEY_VERSION,
    ScheduleKey,
    canonical_form,
    canonical_order,
    derive_key,
    machine_fingerprint,
    params_fingerprint,
    pattern_digest,
)
from .pool import WorkerPool
from .scheduler import Scheduler, ServiceResponse, adapt_schedule
from .store import ScheduleStore, StoreEntry
from .tracing import RequestTrace

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "PoissonArrivals",
    "arrival_names",
    "make_arrivals",
    "register_arrival",
    "SERVICE_CHAOS_SCHEMA",
    "ServiceChaosReport",
    "ServiceChaosRun",
    "render_service_chaos",
    "run_service_campaign",
    "write_service_chaos",
    "SERVICE_SCHEMA",
    "drift_variant",
    "pattern_corpus",
    "render_service_bench",
    "request_stream",
    "run_service_bench",
    "run_service_cell",
    "write_service_bench",
    "zipf_mix",
    "BREAKER_STATES",
    "SHED_POLICIES",
    "AdmissionGate",
    "BackoffPolicy",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineExceeded",
    "GuardConfig",
    "ServiceError",
    "ServiceOverloaded",
    "TransientBuildError",
    "WorkerCrashed",
    "KEY_VERSION",
    "ScheduleKey",
    "canonical_form",
    "canonical_order",
    "derive_key",
    "machine_fingerprint",
    "params_fingerprint",
    "pattern_digest",
    "WorkerPool",
    "Scheduler",
    "ServiceResponse",
    "RequestTrace",
    "adapt_schedule",
    "ScheduleStore",
    "StoreEntry",
]
