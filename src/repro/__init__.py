"""repro — reproduction of Ponnusamy, Thakur, Choudhary & Fox (SC 1992),
"Scheduling Regular and Irregular Communication Patterns on the CM-5".

The package models a CM-5 partition (fat-tree data network, control
network, synchronous CMMD messaging), implements the paper's four
complete-exchange algorithms (LEX, PEX, REX, BEX), two broadcast
algorithms (LIB, REB), four irregular-pattern schedulers (LS, PS, BS,
GS), and the applications used to evaluate them (2-D FFT, conjugate
gradient, unstructured-mesh Euler), plus the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import MachineConfig, CommPattern
>>> from repro.schedules import pairwise_exchange, execute_schedule
>>> cfg = MachineConfig(32)
>>> sched = pairwise_exchange(32, 256)
>>> result = execute_schedule(sched, cfg)
>>> result.time > 0
True
"""

from .machine import (
    CM5Params,
    DEFAULT_PARAMS,
    MachineConfig,
    wire_bytes,
)

__version__ = "1.0.0"

__all__ = [
    "CM5Params",
    "DEFAULT_PARAMS",
    "MachineConfig",
    "wire_bytes",
    "CommPattern",
    "Schedule",
    "run_spmd",
    "Comm",
    "execute_schedule",
    "__version__",
]


_LAZY = {
    "CommPattern": ("repro.schedules.pattern", "CommPattern"),
    "Schedule": ("repro.schedules.schedule", "Schedule"),
    "run_spmd": ("repro.cmmd.program", "run_spmd"),
    "Comm": ("repro.cmmd.api", "Comm"),
    "execute_schedule": ("repro.schedules.executor", "execute_schedule"),
}


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid import cycles.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
