"""Regeneration of every table and figure in the paper's evaluation.

Each ``figN_data`` / ``tableN_data`` function sweeps exactly the
parameter grid of the corresponding exhibit and returns structured
results; the benchmark harness and the CLI are thin wrappers around
these.  Scalar results are memoized through
:func:`repro.analysis.cache.default_cache`, so a full regeneration is
incremental across runs.

Experiment index (also in DESIGN.md):

========  ==========================================================
fig5      complete exchange vs message size, 32 nodes
fig6/7/8  complete exchange vs machine size (0/256, 512, 1920 bytes)
table5    2-D FFT with each exchange algorithm, 32 and 256 nodes
fig10     broadcast vs message size, 32 nodes
fig11     REB vs system broadcast vs machine size
table11   irregular scheduling of synthetic densities, 32 nodes
table12   irregular scheduling of real application patterns
========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..apps.fft2d import fft2d_time
from ..apps.transpose import EXCHANGE_ALGORITHMS
from ..apps.workloads import Workload, paper_workload, workload_names
from ..cmmd.api import Comm
from ..cmmd.collectives import broadcast_linear, broadcast_recursive
from ..cmmd.program import run_spmd
from ..machine.params import CM5Params, DEFAULT_PARAMS, MachineConfig
from ..schedules.executor import execute_schedule
from ..schedules.irregular import algorithm_names, schedule_irregular
from ..schedules.pattern import CommPattern
from .cache import default_cache
from .figures import FigureData

__all__ = [
    "exchange_time",
    "broadcast_time",
    "irregular_time",
    "fft_time",
    "fig5_data",
    "fig678_data",
    "table5_data",
    "fig10_data",
    "fig11_data",
    "table11_data",
    "table12_data",
    "EXCHANGE_ALGS",
    "BROADCAST_KINDS",
]

EXCHANGE_ALGS: Tuple[str, ...] = ("linear", "pairwise", "recursive", "balanced")
BROADCAST_KINDS: Tuple[str, ...] = ("lib", "reb", "system")

#: Figure sweep grids, straight from the paper.
FIG5_SIZES: Tuple[int, ...] = (0, 16, 64, 256, 512, 1024, 1536, 2048)
FIG678_MACHINES: Tuple[int, ...] = (16, 32, 64, 128, 256)
FIG10_SIZES: Tuple[int, ...] = (16, 64, 256, 1024, 2048, 4096, 8192)
FIG11_SIZES: Tuple[int, ...] = (256, 1024, 4096)


def _params_key(params: CM5Params) -> str:
    if params == DEFAULT_PARAMS:
        return "default"
    return f"h{hash(params) & 0xFFFFFFFF:08x}"


# ----------------------------------------------------------------------
# Cached scalar measurements
# ----------------------------------------------------------------------
def exchange_time(
    algorithm: str,
    nprocs: int,
    nbytes: int,
    params: Optional[CM5Params] = None,
    seed: int = 0,
) -> float:
    """Seconds for one complete exchange of ``nbytes`` per pair."""
    params = params or DEFAULT_PARAMS
    gen = EXCHANGE_ALGORITHMS[algorithm]
    key = f"xchg/{algorithm}/{nprocs}/{nbytes}/{seed}/{_params_key(params)}"

    def run() -> float:
        cfg = MachineConfig(nprocs, params)
        return execute_schedule(gen(nprocs, nbytes), cfg, seed=seed).time

    return default_cache().get_or_compute(key, run)


def _bcast_program(comm: Comm, kind: str, nbytes: int):
    if kind == "lib":
        yield from broadcast_linear(comm, 0, nbytes)
    elif kind == "reb":
        yield from broadcast_recursive(comm, 0, nbytes)
    elif kind == "system":
        yield comm.sys_broadcast(0, nbytes)
    else:  # pragma: no cover
        raise ValueError(f"unknown broadcast kind {kind!r}")


def broadcast_time(
    kind: str,
    nprocs: int,
    nbytes: int,
    params: Optional[CM5Params] = None,
    seed: int = 0,
) -> float:
    """Seconds for a one-to-all broadcast of ``nbytes`` from rank 0."""
    if kind not in BROADCAST_KINDS:
        raise ValueError(f"unknown broadcast kind {kind!r}")
    params = params or DEFAULT_PARAMS
    key = f"bcast/{kind}/{nprocs}/{nbytes}/{seed}/{_params_key(params)}"

    def run() -> float:
        cfg = MachineConfig(nprocs, params)
        return run_spmd(cfg, _bcast_program, kind, nbytes, seed=seed).makespan

    return default_cache().get_or_compute(key, run)


def irregular_time(
    pattern: CommPattern,
    algorithm: str,
    params: Optional[CM5Params] = None,
    seed: int = 0,
    cache_key: Optional[str] = None,
) -> float:
    """Seconds to complete ``pattern`` under the named scheduler.

    Pass ``cache_key`` (e.g. ``"synth/0.25/256/42"``) to enable disk
    memoization; anonymous patterns are always recomputed.
    """
    params = params or DEFAULT_PARAMS

    def run() -> float:
        cfg = MachineConfig(pattern.nprocs, params)
        sched = schedule_irregular(pattern, algorithm)
        return execute_schedule(sched, cfg, seed=seed).time

    if cache_key is None:
        return run()
    key = f"irr/{cache_key}/{algorithm}/{seed}/{_params_key(params)}"
    return default_cache().get_or_compute(key, run)


def fft_time(
    n: int,
    nprocs: int,
    algorithm: str,
    params: Optional[CM5Params] = None,
    seed: int = 0,
) -> float:
    """Seconds for the distributed 2-D FFT of an ``n x n`` array."""
    params = params or DEFAULT_PARAMS
    key = f"fft/{algorithm}/{nprocs}/{n}/{seed}/{_params_key(params)}"

    def run() -> float:
        cfg = MachineConfig(nprocs, params)
        return fft2d_time(n, cfg, algorithm, seed=seed).total_time

    return default_cache().get_or_compute(key, run)


# ----------------------------------------------------------------------
# Figure/table sweeps
# ----------------------------------------------------------------------
def fig5_data(
    sizes: Sequence[int] = FIG5_SIZES,
    nprocs: int = 32,
    algorithms: Sequence[str] = EXCHANGE_ALGS,
    params: Optional[CM5Params] = None,
) -> FigureData:
    """Figure 5: exchange time vs message size on one machine size."""
    fig = FigureData(
        name=f"Figure 5: complete exchange on {nprocs} nodes",
        xlabel="message size (bytes)",
        ylabel="time (ms)",
    )
    for alg in algorithms:
        ys = [exchange_time(alg, nprocs, s, params) * 1e3 for s in sizes]
        fig.add(alg, list(sizes), ys)
    return fig


def fig678_data(
    nbytes: int,
    machines: Sequence[int] = FIG678_MACHINES,
    algorithms: Sequence[str] = ("pairwise", "recursive", "balanced"),
    params: Optional[CM5Params] = None,
) -> FigureData:
    """Figures 6-8: exchange time vs machine size for one message size."""
    fig = FigureData(
        name=f"Figures 6-8: complete exchange, {nbytes}-byte messages",
        xlabel="processors",
        ylabel="time (ms)",
    )
    for alg in algorithms:
        ys = [exchange_time(alg, n, nbytes, params) * 1e3 for n in machines]
        fig.add(alg, list(machines), ys)
    return fig


def table5_data(
    machine_sizes: Sequence[int] = (32, 256),
    array_sizes: Sequence[int] = (256, 512, 1024, 2048),
    algorithms: Sequence[str] = EXCHANGE_ALGS,
    params: Optional[CM5Params] = None,
) -> Dict[Tuple[int, int], Dict[str, float]]:
    """Table 5: (nprocs, n) -> {algorithm: seconds}."""
    out: Dict[Tuple[int, int], Dict[str, float]] = {}
    for p in machine_sizes:
        for n in array_sizes:
            out[(p, n)] = {
                alg: fft_time(n, p, alg, params) for alg in algorithms
            }
    return out


def fig10_data(
    sizes: Sequence[int] = FIG10_SIZES,
    nprocs: int = 32,
    kinds: Sequence[str] = BROADCAST_KINDS,
    params: Optional[CM5Params] = None,
) -> FigureData:
    """Figure 10: broadcast time vs message size on 32 nodes."""
    fig = FigureData(
        name=f"Figure 10: broadcast on {nprocs} nodes",
        xlabel="message size (bytes)",
        ylabel="time (ms)",
    )
    for kind in kinds:
        ys = [broadcast_time(kind, nprocs, s, params) * 1e3 for s in sizes]
        fig.add(kind, list(sizes), ys)
    return fig


def fig11_data(
    machines: Sequence[int] = FIG678_MACHINES,
    sizes: Sequence[int] = FIG11_SIZES,
    params: Optional[CM5Params] = None,
) -> FigureData:
    """Figure 11: REB (per message size) and system broadcast vs machine size.

    The system broadcast is machine-size independent, so — like the
    paper — a single curve represents it (evaluated per machine size to
    prove the flatness).
    """
    fig = FigureData(
        name="Figure 11: recursive vs system broadcast",
        xlabel="processors",
        ylabel="time (ms)",
    )
    for s in sizes:
        ys = [broadcast_time("reb", n, s, params) * 1e3 for n in machines]
        fig.add(f"reb-{s}B", list(machines), ys)
    mid = sizes[len(sizes) // 2]
    ys = [broadcast_time("system", n, mid, params) * 1e3 for n in machines]
    fig.add(f"system-{mid}B", list(machines), ys)
    return fig


def table11_data(
    densities: Sequence[float] = (0.10, 0.25, 0.50, 0.75),
    msg_sizes: Sequence[int] = (256, 512),
    nprocs: int = 32,
    seed: int = 42,
    algorithms: Sequence[str] = tuple(algorithm_names()),
    params: Optional[CM5Params] = None,
) -> Dict[Tuple[float, int], Dict[str, float]]:
    """Table 11: (density, bytes) -> {algorithm: seconds}."""
    out: Dict[Tuple[float, int], Dict[str, float]] = {}
    for d in densities:
        for s in msg_sizes:
            pattern = CommPattern.synthetic(nprocs, d, s, seed=seed)
            out[(d, s)] = {
                alg: irregular_time(
                    pattern,
                    alg,
                    params,
                    cache_key=f"synth/{nprocs}/{d}/{s}/{seed}",
                )
                for alg in algorithms
            }
    return out


def table12_data(
    nprocs: int = 32,
    algorithms: Sequence[str] = tuple(algorithm_names()),
    params: Optional[CM5Params] = None,
) -> "Tuple[Dict[str, Dict[str, float]], Dict[str, Workload]]":
    """Table 12: workload -> {algorithm: seconds}, plus the workloads."""
    times: Dict[str, Dict[str, float]] = {}
    loads: Dict[str, Workload] = {}
    for name in workload_names():
        wl = paper_workload(name, nprocs)
        loads[name] = wl
        pat_id = hash(wl.pattern) & 0xFFFFFFFF
        times[name] = {
            alg: irregular_time(
                wl.pattern,
                alg,
                params,
                cache_key=f"real/{name}/{nprocs}/{pat_id:08x}",
            )
            for alg in algorithms
        }
    return times, loads
