"""Series rendering for the paper's figures: ASCII plots + CSV.

The benchmark harness regenerates each figure as (a) the numeric series
(also dumped as CSV for external plotting) and (b) a quick ASCII chart
so crossovers are visible directly in terminal output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "FigureData", "ascii_plot"]


@dataclass(frozen=True)
class Series:
    """One labeled curve: parallel x/y arrays."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x vs {len(self.y)} y"
            )


@dataclass
class FigureData:
    """A figure: several series over a shared x axis meaning."""

    name: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(Series(label, list(x), list(y)))

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        lines = [f"series,{self.xlabel},{self.ylabel}"]
        for s in self.series:
            for xv, yv in zip(s.x, s.y):
                lines.append(f"{s.label},{xv:g},{yv:.9g}")
        return "\n".join(lines) + "\n"

    def render(self, width: int = 68, height: int = 18, logy: bool = True) -> str:
        return ascii_plot(self, width=width, height=height, logy=logy)


_MARKS = "ox+*#@%&"


def ascii_plot(
    fig: FigureData, width: int = 68, height: int = 18, logy: bool = True
) -> str:
    """Render the figure as a character grid with a legend.

    ``logy`` plots log10(y) — the natural scale for timing curves whose
    algorithms differ by orders of magnitude (LEX vs the rest).
    """
    pts: List["tuple[float, float, str]"] = []
    for i, s in enumerate(fig.series):
        mark = _MARKS[i % len(_MARKS)]
        for xv, yv in zip(s.x, s.y):
            if yv <= 0 and logy:
                continue
            pts.append((float(xv), float(yv), mark))
    if not pts:
        return f"[{fig.name}: no data]"

    xs = [p[0] for p in pts]
    ys = [math.log10(p[1]) if logy else p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (xv, yv, mark), ylog in zip(pts, ys):
        col = int((xv - x0) / xspan * (width - 1))
        row = int((ylog - y0) / yspan * (height - 1))
        grid[height - 1 - row][col] = mark

    lines = [f"{fig.name}   ({fig.ylabel}{' [log]' if logy else ''} vs {fig.xlabel})"]
    top = 10 ** y1 if logy else y1
    bottom = 10 ** y0 if logy else y0
    lines.append(f"{top:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bottom:10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<10g}" + " " * max(0, width - 20) + f"{x1:>10g}"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={s.label}" for i, s in enumerate(fig.series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
