"""Cross-model conformance: three cost backends, one set of claims.

The repository prices a schedule three independent ways:

* ``estimate`` — the closed-form analytic model
  (:func:`repro.schedules.estimate.estimate_schedule_time`);
* ``fluid`` — the production discrete-event executor over the max-min
  fluid network (:func:`repro.schedules.executor.execute_schedule`);
* ``packet`` — the per-packet store-and-forward validator
  (:func:`repro.sim.packets.packet_schedule_time`).

The paper's results are *shape* claims — which algorithm wins at which
message size, machine size and density — so the dangerous failure mode
is not absolute error but silent disagreement: one backend flipping an
algorithm ranking that another still reports.  This harness runs the
paper's canonical workloads (the Figure 5 sweep, Figure 6-8 scaling
points, Table 11 synthetic densities, Table 12 application patterns)
through all three backends, lints every schedule first
(:func:`repro.schedules.validate.validate_schedule`), and checks two
properties:

* **drift** — for every workload, each backend pair must agree within a
  per-pair tolerance factor (the estimator ignores cross-step
  pipelining, so its band is the widest);
* **ranking** — within a workload group, no backend pair may
  *decisively* disagree on which algorithm is faster.  Decisive means
  faster by more than ``margin``; near-ties (the paper's own PS/BS
  columns sit within 0.3 % of each other) are not rankings.

``run_conformance`` returns a report; ``write_conformance`` emits
``results/conformance.txt`` plus machine-readable
``results/conformance.json`` (schema ``repro-conformance/1``); the CLI
(``python -m repro conformance``) exits non-zero on any inversion or
drift violation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.workloads import paper_workload, workload_names
from ..machine.params import CM5Params, MachineConfig
from ..schedules.estimate import estimate_schedule_time
from ..schedules.executor import execute_schedule
from ..schedules.irregular import algorithm_names, schedule_irregular
from ..schedules.pattern import CommPattern
from ..schedules.schedule import Schedule
from ..schedules.validate import validate_schedule
from ..sim.packets import packet_schedule_time

__all__ = [
    "CONFORMANCE_SCHEMA",
    "BACKENDS",
    "DEFAULT_MARGIN",
    "DEFAULT_TOLERANCES",
    "GroupResult",
    "RankInversion",
    "DriftViolation",
    "ConformanceReport",
    "backend_times",
    "run_conformance",
    "render_conformance",
    "conformance_json",
    "write_conformance",
]

CONFORMANCE_SCHEMA = "repro-conformance/1"

#: Backend names, in report column order.
BACKENDS: Tuple[str, ...] = ("estimate", "fluid", "packet")

#: Relative gap below which two times are a tie, not a ranking.  The
#: paper's Table 11 has PS/BS columns within 0.3 % of each other;
#: anything inside this band is model noise, not a claim.
DEFAULT_MARGIN = 0.15

#: Pairwise absolute-time agreement factors.  The estimator deliberately
#: ignores cross-step pipelining (a sparse linear schedule overlaps
#: steps heavily in the DES), so its band is the widest; fluid and
#: packet simulate the same wire and sit closer together.
DEFAULT_TOLERANCES: Dict[Tuple[str, str], float] = {
    ("estimate", "fluid"): 6.0,
    ("estimate", "packet"): 6.0,
    ("fluid", "packet"): 4.0,
}

#: Message sizes for the exchange sweeps (quick keeps the Figure 5
#: crossover region, full spans the published axis).
_FIG5_SIZES_FULL = (0, 256, 512, 1024, 2048)
_FIG5_SIZES_QUICK = (256, 1024)
_TABLE11_DENSITIES_FULL = (0.10, 0.25, 0.50, 0.75)
_TABLE11_DENSITIES_QUICK = (0.10, 0.75)
_TABLE11_SEED = 42

#: Regular complete-exchange builders, keyed by the irregular-style
#: names the report uses.
_EXCHANGE_BUILDERS: Dict[str, Callable[[int, int], Schedule]] = {}


def _exchange_builders() -> Dict[str, Callable[[int, int], Schedule]]:
    if not _EXCHANGE_BUILDERS:
        from ..schedules.bex import balanced_exchange
        from ..schedules.lex import linear_exchange
        from ..schedules.pex import pairwise_exchange
        from ..schedules.rex import recursive_exchange

        _EXCHANGE_BUILDERS.update(
            {
                "linear": linear_exchange,
                "pairwise": pairwise_exchange,
                "recursive": recursive_exchange,
                "balanced": balanced_exchange,
            }
        )
    return _EXCHANGE_BUILDERS


@dataclass(frozen=True)
class RankInversion:
    """Two backends decisively disagree on an algorithm pair."""

    group: str
    backend_a: str
    backend_b: str
    #: Algorithm each backend calls decisively faster (they differ).
    faster_a: str
    faster_b: str
    #: That backend's slower/faster time ratio (> 1 + margin).
    gap_a: float
    gap_b: float

    def describe(self) -> str:
        return (
            f"{self.group}: {self.backend_a} says {self.faster_a} wins by "
            f"{self.gap_a:.2f}x, {self.backend_b} says {self.faster_b} "
            f"wins by {self.gap_b:.2f}x"
        )


@dataclass(frozen=True)
class DriftViolation:
    """One workload's times disagree beyond the pairwise tolerance."""

    group: str
    algorithm: str
    backend_a: str
    backend_b: str
    time_a: float
    time_b: float
    ratio: float  # max(a/b, b/a)
    tolerance: float

    def describe(self) -> str:
        return (
            f"{self.group}/{self.algorithm}: {self.backend_a}="
            f"{self.time_a * 1e3:.3f}ms vs {self.backend_b}="
            f"{self.time_b * 1e3:.3f}ms ({self.ratio:.2f}x > "
            f"{self.tolerance:.1f}x allowed)"
        )


@dataclass
class GroupResult:
    """One workload group: algorithms priced by every backend."""

    name: str
    nprocs: int
    #: algorithm -> backend -> seconds
    times: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def ranking(self, backend: str) -> List[str]:
        return sorted(self.times, key=lambda alg: self.times[alg][backend])


@dataclass
class ConformanceReport:
    """Full harness outcome."""

    scale: str
    margin: float
    tolerances: Dict[Tuple[str, str], float]
    groups: List[GroupResult] = field(default_factory=list)
    inversions: List[RankInversion] = field(default_factory=list)
    drifts: List[DriftViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.inversions and not self.drifts

    def max_drift(self) -> Dict[Tuple[str, str], float]:
        """Worst observed ratio per backend pair (diagnostic)."""
        worst: Dict[Tuple[str, str], float] = {
            pair: 1.0 for pair in self.tolerances
        }
        for group in self.groups:
            for times in group.times.values():
                for pair in self.tolerances:
                    a, b = times[pair[0]], times[pair[1]]
                    if a > 0 and b > 0:
                        worst[pair] = max(worst[pair], a / b, b / a)
        return worst


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------
def backend_times(
    schedule: Schedule,
    config: MachineConfig,
    pattern: Optional[CommPattern] = None,
) -> Dict[str, float]:
    """Price one schedule with all three backends (after linting it)."""
    validate_schedule(schedule, pattern)
    return {
        "estimate": estimate_schedule_time(schedule, config),
        "fluid": execute_schedule(schedule, config).time,
        "packet": packet_schedule_time(schedule, config),
    }


def _check_group(
    group: GroupResult,
    margin: float,
    tolerances: Dict[Tuple[str, str], float],
    inversions: List[RankInversion],
    drifts: List[DriftViolation],
) -> None:
    algs = list(group.times)
    # Drift: every workload, every backend pair.
    for alg in algs:
        times = group.times[alg]
        for pair, tol in tolerances.items():
            a, b = times[pair[0]], times[pair[1]]
            if a <= 0 or b <= 0:
                continue
            ratio = max(a / b, b / a)
            if ratio > tol:
                drifts.append(
                    DriftViolation(
                        group.name, alg, pair[0], pair[1], a, b, ratio, tol
                    )
                )
    # Ranking: a pair of algorithms inverts when two backends each see a
    # decisive winner and the winners differ.
    for i, x in enumerate(algs):
        for y in algs[i + 1:]:
            verdicts: Dict[str, Tuple[str, float]] = {}
            for backend in BACKENDS:
                tx = group.times[x][backend]
                ty = group.times[y][backend]
                if tx * (1.0 + margin) < ty:
                    verdicts[backend] = (x, ty / tx if tx > 0 else float("inf"))
                elif ty * (1.0 + margin) < tx:
                    verdicts[backend] = (y, tx / ty if ty > 0 else float("inf"))
            names = list(verdicts)
            for i_a, a in enumerate(names):
                for b in names[i_a + 1:]:
                    if verdicts[a][0] != verdicts[b][0]:
                        inversions.append(
                            RankInversion(
                                group.name,
                                a,
                                b,
                                verdicts[a][0],
                                verdicts[b][0],
                                verdicts[a][1],
                                verdicts[b][1],
                            )
                        )


# ----------------------------------------------------------------------
# Workload grid
# ----------------------------------------------------------------------
def _conformance_groups(
    quick: bool, progress: Optional[Callable[[str], None]]
) -> List[GroupResult]:
    params = CM5Params(routing_jitter=0.0)
    groups: List[GroupResult] = []

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def add_exchange_group(name: str, nprocs: int, nbytes: int,
                           algorithms: Sequence[str]) -> None:
        cfg = MachineConfig(nprocs, params)
        pattern = CommPattern.complete_exchange(nprocs, nbytes)
        group = GroupResult(name, nprocs)
        for alg in algorithms:
            sched = _exchange_builders()[alg](nprocs, nbytes)
            group.times[alg] = backend_times(sched, cfg, pattern)
        groups.append(group)
        note(f"  {name}: {len(group.times)} algorithms priced")

    def add_pattern_group(name: str, pattern: CommPattern) -> None:
        cfg = MachineConfig(pattern.nprocs, params)
        group = GroupResult(name, pattern.nprocs)
        # The ranking contract is about *independent* models agreeing on
        # the paper's algorithms.  The local-search refiner ("local")
        # optimizes the estimate backend directly, so it sits at
        # estimate-decisive / fluid-near-tie boundaries by construction
        # — a margin-flip there is expected, not backend drift.  It is
        # cross-checked through all three backends (and against the
        # makespan lower bounds) by repro.analysis.optgap instead.
        for alg in algorithm_names():
            if alg == "local":
                continue
            sched = schedule_irregular(pattern, alg)
            group.times[alg] = backend_times(sched, cfg, pattern)
        groups.append(group)
        note(f"  {name}: {len(group.times)} algorithms priced")

    # Figure 5: complete exchange vs message size on one machine.
    fig5_n = 16 if quick else 32
    fig5_sizes = _FIG5_SIZES_QUICK if quick else _FIG5_SIZES_FULL
    note(f"Figure 5 sweep ({fig5_n} nodes)")
    for nbytes in fig5_sizes:
        add_exchange_group(
            f"fig5/n{fig5_n}/b{nbytes}",
            fig5_n,
            nbytes,
            ("linear", "pairwise", "recursive", "balanced"),
        )

    # Figures 6-8: machine-size scaling points (512 B, the Fig. 7 size).
    if not quick:
        note("Figure 6-8 scaling points")
        for nprocs in (16, 64):
            add_exchange_group(
                f"fig678/n{nprocs}/b512",
                nprocs,
                512,
                ("pairwise", "recursive", "balanced"),
            )

    # Table 11: synthetic densities on 32 nodes.
    densities = _TABLE11_DENSITIES_QUICK if quick else _TABLE11_DENSITIES_FULL
    sizes = (256,) if quick else (256, 512)
    note("Table 11 densities (32 nodes)")
    for d in densities:
        for nbytes in sizes:
            pattern = CommPattern.synthetic(
                32, d, nbytes, seed=_TABLE11_SEED
            )
            add_pattern_group(f"table11/d{int(d * 100)}/b{nbytes}", pattern)

    # Table 12: application patterns on 32 nodes.
    if not quick:
        note("Table 12 application patterns (32 nodes)")
        for wl_name in workload_names():
            wl = paper_workload(wl_name, 32)
            add_pattern_group(f"table12/{wl_name}", wl.pattern)

    return groups


def run_conformance(
    quick: bool = False,
    margin: float = DEFAULT_MARGIN,
    tolerances: Optional[Dict[Tuple[str, str], float]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ConformanceReport:
    """Run the canonical workloads through all three backends."""
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    for pair, tol in tolerances.items():
        if tol < 1.0:
            raise ValueError(f"tolerance for {pair} must be >= 1, got {tol}")
    report = ConformanceReport(
        scale="quick" if quick else "full",
        margin=margin,
        tolerances=tolerances,
    )
    report.groups = _conformance_groups(quick, progress)
    for group in report.groups:
        _check_group(
            group, margin, tolerances, report.inversions, report.drifts
        )
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_conformance(report: ConformanceReport) -> str:
    """Fixed-width text report (the results/conformance.txt payload)."""
    lines = [
        f"Cross-model conformance ({report.scale} scale)",
        f"backends: {', '.join(BACKENDS)}   "
        f"ranking margin: {report.margin:.0%}",
        "",
    ]
    for group in report.groups:
        lines.append(f"{group.name} ({group.nprocs} nodes, times in ms)")
        header = f"  {'algorithm':<12}" + "".join(
            f"{b:>12}" for b in BACKENDS
        )
        lines.append(header)
        for alg, times in group.times.items():
            lines.append(
                f"  {alg:<12}"
                + "".join(f"{times[b] * 1e3:12.3f}" for b in BACKENDS)
            )
        orders = {b: " < ".join(group.ranking(b)) for b in BACKENDS}
        if len(set(orders.values())) == 1:
            lines.append(f"  ranking (all backends): {orders['fluid']}")
        else:
            for b in BACKENDS:
                lines.append(f"  ranking ({b}): {orders[b]}")
        lines.append("")
    worst = report.max_drift()
    lines.append("pairwise drift (worst observed / allowed):")
    for pair, tol in report.tolerances.items():
        lines.append(
            f"  {pair[0]:>9} vs {pair[1]:<7} {worst[pair]:6.2f}x / "
            f"{tol:.1f}x"
        )
    lines.append("")
    for inv in report.inversions:
        lines.append(f"RANK INVERSION  {inv.describe()}")
    for d in report.drifts:
        lines.append(f"DRIFT           {d.describe()}")
    n_workloads = sum(len(g.times) for g in report.groups)
    if report.ok:
        lines.append(
            f"OK: {len(report.groups)} group(s), {n_workloads} workload(s), "
            f"zero ranking inversions, drift within tolerance"
        )
    else:
        lines.append(
            f"FAIL: {len(report.inversions)} ranking inversion(s), "
            f"{len(report.drifts)} drift violation(s)"
        )
    return "\n".join(lines)


def conformance_json(report: ConformanceReport) -> Dict[str, object]:
    """Machine-readable document (the results/conformance.json payload)."""
    return {
        "schema": CONFORMANCE_SCHEMA,
        "scale": report.scale,
        "margin": report.margin,
        "tolerances": {
            f"{a}/{b}": tol for (a, b), tol in report.tolerances.items()
        },
        "groups": {
            g.name: {
                "nprocs": g.nprocs,
                "times_ms": {
                    alg: {b: t * 1e3 for b, t in times.items()}
                    for alg, times in g.times.items()
                },
                "rankings": {b: g.ranking(b) for b in BACKENDS},
            }
            for g in report.groups
        },
        "max_drift": {
            f"{a}/{b}": ratio
            for (a, b), ratio in report.max_drift().items()
        },
        "inversions": [
            {
                "group": i.group,
                "backend_a": i.backend_a,
                "backend_b": i.backend_b,
                "faster_a": i.faster_a,
                "faster_b": i.faster_b,
                "gap_a": i.gap_a,
                "gap_b": i.gap_b,
            }
            for i in report.inversions
        ],
        "drift_violations": [
            {
                "group": d.group,
                "algorithm": d.algorithm,
                "backend_a": d.backend_a,
                "backend_b": d.backend_b,
                "time_a": d.time_a,
                "time_b": d.time_b,
                "ratio": d.ratio,
                "tolerance": d.tolerance,
            }
            for d in report.drifts
        ],
        "ok": report.ok,
    }


def write_conformance(
    report: ConformanceReport, results_dir: Path = Path("results")
) -> Tuple[Path, Path]:
    """Write the text and JSON artifacts; return their paths."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    txt = results_dir / "conformance.txt"
    txt.write_text(render_conformance(report) + "\n")
    js = results_dir / "conformance.json"
    with open(js, "w") as fh:
        json.dump(conformance_json(report), fh, indent=2)
        fh.write("\n")
    return txt, js
