"""Parameter sensitivity: how calibration constants move the results.

A reproduction built on a calibrated model owes the reader an answer to
"how much does conclusion X depend on constant Y?".  This module sweeps
one :class:`CM5Params` field over a multiplicative range, re-evaluates a
caller-supplied metric, and reports the local elasticity
(d log metric / d log param at the calibrated point).

Used by the ablation benchmarks and handy interactively::

    from repro.analysis.sensitivity import sweep_parameter
    res = sweep_parameter(
        "switch_contention",
        lambda p: exchange_time("pairwise", 32, 1024, params=p)
                  - exchange_time("balanced", 32, 1024, params=p),
    )
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..machine.params import CM5Params, DEFAULT_PARAMS

__all__ = ["SensitivityResult", "sweep_parameter"]

Metric = Callable[[CM5Params], float]


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of one parameter sweep."""

    field: str
    points: Tuple[Tuple[float, float], ...]  # (param value, metric value)
    elasticity: Optional[float]  # d ln(metric)/d ln(param) near default

    def table(self) -> str:
        lines = [f"sensitivity of metric to {self.field}"]
        for v, m in self.points:
            lines.append(f"  {v:12.6g} -> {m:12.6g}")
        if self.elasticity is not None:
            lines.append(f"  elasticity at default: {self.elasticity:+.3f}")
        return "\n".join(lines)


def sweep_parameter(
    field: str,
    metric: Metric,
    factors: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    base: Optional[CM5Params] = None,
) -> SensitivityResult:
    """Evaluate ``metric`` with ``field`` scaled by each factor.

    The elasticity is estimated from the two factors bracketing 1.0
    (requires positive metric values there; otherwise None).
    """
    base = base or DEFAULT_PARAMS
    center = getattr(base, field)
    if not isinstance(center, float):
        raise TypeError(f"{field!r} is not a float parameter")
    if center == 0:
        raise ValueError(f"{field!r} is zero at the base point; nothing to scale")
    points: List[Tuple[float, float]] = []
    for f in factors:
        params = replace(base, **{field: center * f})
        points.append((center * f, float(metric(params))))

    elasticity: Optional[float] = None
    below = [(v, m) for v, m in points if v < center and m > 0]
    above = [(v, m) for v, m in points if v > center and m > 0]
    if below and above:
        v0, m0 = below[-1]
        v1, m1 = above[0]
        elasticity = (math.log(m1) - math.log(m0)) / (
            math.log(v1) - math.log(v0)
        )
    return SensitivityResult(
        field=field, points=tuple(points), elasticity=elasticity
    )
