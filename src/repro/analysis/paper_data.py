"""The paper's published numbers, transcribed for side-by-side reporting.

Everything the evaluation section states numerically lives here:
Table 5 (2-D FFT), Table 11 (synthetic irregular patterns), Table 12
(real irregular patterns), and the qualitative claims of Figures 5-8,
10 and 11 encoded as machine-checkable orderings.

Units follow the paper: Table 5 in seconds, Tables 11-12 in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "TABLE5_FFT_SECONDS",
    "TABLE11_SYNTHETIC_MS",
    "TABLE12_REAL_MS",
    "TABLE12_STATS",
    "FIGURE_CLAIMS",
    "IRREGULAR_ORDER",
    "EXCHANGE_ORDER",
]

#: Algorithm column order used by every irregular table.
IRREGULAR_ORDER: Tuple[str, ...] = ("linear", "pairwise", "balanced", "greedy")
#: Algorithm column order used by the FFT table.
EXCHANGE_ORDER: Tuple[str, ...] = ("linear", "pairwise", "recursive", "balanced")

#: Table 5 — 2-D FFT wall time in seconds:
#: (nprocs, array size) -> {algorithm: seconds}.
TABLE5_FFT_SECONDS: Dict[Tuple[int, int], Dict[str, float]] = {
    (32, 256): {"linear": 0.215, "pairwise": 0.152, "recursive": 0.112, "balanced": 0.114},
    (32, 512): {"linear": 0.845, "pairwise": 0.470, "recursive": 0.467, "balanced": 0.470},
    (32, 1024): {"linear": 3.135, "pairwise": 2.007, "recursive": 2.480, "balanced": 2.005},
    (32, 2048): {"linear": 14.780, "pairwise": 9.032, "recursive": 9.245, "balanced": 8.509},
    (256, 256): {"linear": 4.340, "pairwise": 0.076, "recursive": 0.077, "balanced": 0.076},
    (256, 512): {"linear": 4.750, "pairwise": 0.120, "recursive": 0.120, "balanced": 0.120},
    (256, 1024): {"linear": 5.968, "pairwise": 0.314, "recursive": 0.313, "balanced": 0.312},
    (256, 2048): {"linear": 18.087, "pairwise": 1.738, "recursive": 2.160, "balanced": 1.668},
}

#: Table 11 — synthetic irregular patterns on 32 processors,
#: milliseconds: (density, message bytes) -> {algorithm: ms}.
TABLE11_SYNTHETIC_MS: Dict[Tuple[float, int], Dict[str, float]] = {
    (0.10, 256): {"linear": 4.723, "pairwise": 1.766, "balanced": 1.933, "greedy": 1.597},
    (0.10, 512): {"linear": 6.116, "pairwise": 2.275, "balanced": 2.494, "greedy": 2.044},
    (0.25, 256): {"linear": 11.67, "pairwise": 3.977, "balanced": 3.724, "greedy": 3.266},
    (0.25, 512): {"linear": 15.34, "pairwise": 5.193, "balanced": 4.861, "greedy": 4.192},
    (0.50, 256): {"linear": 29.01, "pairwise": 6.324, "balanced": 6.034, "greedy": 6.009},
    (0.50, 512): {"linear": 38.27, "pairwise": 8.360, "balanced": 8.013, "greedy": 7.934},
    (0.75, 256): {"linear": 50.14, "pairwise": 7.882, "balanced": 7.856, "greedy": 9.241},
    (0.75, 512): {"linear": 66.63, "pairwise": 10.52, "balanced": 10.50, "greedy": 12.29},
}

#: Table 12 — real application patterns on 32 processors, milliseconds:
#: workload -> {algorithm: ms}.
TABLE12_REAL_MS: Dict[str, Dict[str, float]] = {
    "cg16k": {"linear": 8.046, "pairwise": 6.623, "balanced": 7.188, "greedy": 5.799},
    "euler545": {"linear": 25.87, "pairwise": 7.374, "balanced": 7.386, "greedy": 5.656},
    "euler2k": {"linear": 48.88, "pairwise": 15.04, "balanced": 15.07, "greedy": 12.30},
    "euler3k": {"linear": 50.78, "pairwise": 19.98, "balanced": 17.57, "greedy": 14.34},
    "euler9k": {"linear": 77.13, "pairwise": 21.91, "balanced": 20.19, "greedy": 17.01},
}

#: Table 12 header statistics: workload -> (density %, mean bytes/op).
TABLE12_STATS: Dict[str, Tuple[float, float]] = {
    "cg16k": (9.0, 643.0),
    "euler545": (37.0, 85.0),
    "euler2k": (44.0, 226.0),
    "euler3k": (29.0, 612.0),
    "euler9k": (44.0, 505.0),
}


@dataclass(frozen=True)
class FigureClaim:
    """One qualitative statement from the paper, checkable against runs."""

    figure: str
    claim: str


FIGURE_CLAIMS: List[FigureClaim] = [
    FigureClaim("fig5", "LEX is far worse than PEX/REX/BEX at every message size on 32 nodes"),
    FigureClaim("fig5", "for small message sizes PEX, REX and BEX are close on 32 nodes"),
    FigureClaim("fig5", "for large message sizes PEX is much better than REX"),
    FigureClaim("fig5", "for large message sizes BEX is better than PEX"),
    FigureClaim("fig6", "at 0 bytes REX is best at every machine size (lg N steps, no reshuffle)"),
    FigureClaim("fig6", "at 256 bytes PEX beats REX on small machines"),
    FigureClaim("fig78", "at 512/1920 bytes on small machines BEX and PEX beat REX"),
    FigureClaim("fig10", "LIB is far worse than REB"),
    FigureClaim("fig10", "REB beats the system broadcast beyond ~1 KB on 32 nodes"),
    FigureClaim("fig10", "the system broadcast beats REB for small messages"),
    FigureClaim("fig11", "system broadcast time is nearly independent of machine size"),
    FigureClaim("table11", "LS is worst at every density (synchronous-send serialization)"),
    FigureClaim("table11", "GS is best below 50% density"),
    FigureClaim("table11", "GS loses to PS/BS above 50% density"),
    FigureClaim("table12", "GS is best on every real workload (densities below 50%)"),
]
