"""Plain-text table rendering for benchmark output and the CLI.

Every benchmark prints the paper's rows next to the measured rows using
these helpers, so a single glance shows whether the shape holds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "paired_rows", "format_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.4f}"
    return str(cell)


def paired_rows(
    label: str,
    measured: Dict[str, float],
    paper: Optional[Dict[str, float]],
    order: Sequence[str],
) -> List[List[object]]:
    """Two table rows: measured values and the paper's, aligned by column."""
    rows: List[List[object]] = [
        [label, "measured"] + [measured.get(k, float("nan")) for k in order]
    ]
    if paper is not None:
        rows.append(
            [label, "paper"] + [paper.get(k, float("nan")) for k in order]
        )
    return rows


def format_comparison(
    title: str,
    order: Sequence[str],
    blocks: Sequence["tuple[str, Dict[str, float], Optional[Dict[str, float]]]"],
    unit: str = "ms",
) -> str:
    """A full paper-vs-measured table.

    ``blocks`` is a sequence of ``(row label, measured, paper-or-None)``.
    """
    headers = ["case", "source"] + [f"{k} ({unit})" for k in order]
    rows: List[List[object]] = []
    for label, measured, paper in blocks:
        rows.extend(paired_rows(label, measured, paper, order))
    return format_table(headers, rows, title=title)
