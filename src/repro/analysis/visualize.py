"""ASCII visualization: fat-tree topology and message-traffic Gantt.

Terminal-friendly views used by the examples and handy when debugging a
new schedule:

* :func:`render_fat_tree` — the partition's levels, switch counts and
  link capacities (the 20/10/5 MB/s profile made visible);
* :func:`render_message_gantt` — one lane per rank, showing when each
  rank's incoming transfers were in flight, built from a
  :class:`repro.sim.trace.Trace`.  LEX's serialized receiver shows up as
  one solid lane while everyone else idles; PEX shows dense synchronized
  stripes.
* :func:`render_link_heatmap` — one lane per fat-tree level, shading the
  mean link utilization per time bin from a traced run's
  :class:`repro.obs.LinkUtilization` series.  PEX's root-link spikes and
  BEX's flat profile (the paper's §3.4 argument) are directly visible in
  the top lanes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from ..machine.fattree import fat_tree_for
from ..machine.params import FAT_TREE_ARITY, MachineConfig
from ..sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import LinkUtilization

__all__ = ["render_fat_tree", "render_message_gantt", "render_link_heatmap"]

#: Shading ramp for the heatmap, blank (idle) to '@' (saturated).
_HEAT_RAMP = " .:-=+*#%@"


def render_fat_tree(config: MachineConfig) -> str:
    """Multi-line summary of the partition's fat tree."""
    tree = fat_tree_for(config)
    lines = [
        f"CM-5 partition: {config.nprocs} nodes, "
        f"{config.levels} fat-tree level(s)"
    ]
    for level in range(config.levels, 0, -1):
        subtree = FAT_TREE_ARITY ** (level - 1)
        n_links = -(-config.nprocs // subtree)
        cap = tree.capacity(("up", level, 0))
        per_node = cap / subtree
        what = "node injection links" if level == 1 else f"level-{level} up/down links"
        lines.append(
            f"  level {level}: {n_links:3d} {what:24s} "
            f"{cap / 1e6:6.0f} MB/s each ({per_node / 1e6:.0f} MB/s per node)"
        )
    lines.append(
        "  per-node bandwidth profile: "
        + " / ".join(
            f"{config.params.level_bandwidth(l) / 1e6:.0f}"
            for l in range(1, max(config.levels, 3) + 1)
        )
        + " MB/s by route level"
    )
    return "\n".join(lines)


def render_message_gantt(
    trace: Trace,
    nprocs: int,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """One text lane per rank: ``#`` while a transfer into it is in flight.

    ``until`` clips the time axis (defaults to the last delivery).
    Lanes render receiver-side occupancy — the quantity that serializes
    the linear algorithms.
    """
    if not trace.messages:
        return "(no messages traced)"
    t_end = until if until is not None else max(m.delivered_at for m in trace.messages)
    if t_end <= 0:
        return "(empty time range)"
    lanes: List[List[str]] = [[" "] * width for _ in range(nprocs)]
    for m in trace.messages:
        if m.dst >= nprocs:
            continue
        a = int(min(m.matched_at, t_end) / t_end * (width - 1))
        b = int(min(m.delivered_at, t_end) / t_end * (width - 1))
        for col in range(a, max(b, a) + 1):
            lanes[m.dst][col] = "#"
    digits = len(str(nprocs - 1))
    lines = [
        f"receiver occupancy over {t_end * 1e3:.3f} ms "
        f"({len(trace.messages)} messages)"
    ]
    for rank, lane in enumerate(lanes):
        lines.append(f"  r{rank:0{digits}d} |{''.join(lane)}|")
    return "\n".join(lines)


def render_link_heatmap(
    util: "LinkUtilization",
    width: int = 72,
    per_link: bool = False,
) -> str:
    """Shade mean link utilization per time bin, one lane per tree level.

    Each lane aggregates the links of one ``(kind, level)`` group (mean
    across the group per bin); ``per_link=True`` expands every link into
    its own lane instead.  Characters map utilization 0..1 onto the
    ramp ``' .:-=+*#%@'``, so a solid ``@`` lane is a saturated level.
    """
    if not util.samples:
        return "(no utilization samples)"
    edges, binned = util.binned_utilization(width)
    t_end = float(edges[-1])
    lines = [
        f"link utilization over {t_end * 1e3:.3f} ms "
        f"({len(util.samples)} rate changes, peak {util.peak_utilization():.2f})"
    ]
    last = len(_HEAT_RAMP) - 1

    def shade(row) -> str:
        return "".join(
            _HEAT_RAMP[min(last, int(u * last + 0.5))] for u in row
        )

    for (kind, level), idxs in util.level_groups().items():
        if per_link:
            for i in idxs:
                _, _, subtree = util.link_ids[i]
                label = f"{kind[0]}{level}.{subtree}"
                lines.append(f"  {label:>8} |{shade(binned[i])}|")
        else:
            mean = binned[idxs].mean(axis=0)
            label = f"{kind} L{level} x{len(idxs)}"
            lines.append(f"  {label:>12} |{shade(mean)}|")
    return "\n".join(lines)
