"""EXPERIMENTS.md generator: paper-vs-measured for every exhibit.

``build_experiments_markdown`` regenerates every table and figure
(cache-backed, so a warm run is instant), renders the side-by-side
numbers, re-evaluates the shape checks, and appends the known-deviation
notes.  The repository's EXPERIMENTS.md is produced by exactly this
function (``cm5-repro report``), so the document can never drift from
what the code measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine.params import DEFAULT_PARAMS
from . import paper_data
from .compare import ShapeCheck, check_order, check_ratio_at_least, crossover_x
from .experiments import (
    broadcast_time,
    exchange_time,
    fig5_data,
    fig678_data,
    fig10_data,
    table5_data,
    table11_data,
    table12_data,
)
from .tables import format_comparison

__all__ = ["build_experiments_markdown"]

_DEVIATION_NOTES = """\
## Known deviations and their reasons

1. **REX at large machine sizes for >=256-byte messages.**  Figures 6-8
   claim REX eventually beats PEX/BEX as the machine grows; our model
   has REX clearly winning only the 0-byte case (every machine size),
   while at 256-1920 bytes REX stays behind at 256 nodes.  The byte
   accounting is unforgiving: REX retransmits every payload lg(N)/2
   times through the same bottleneck levels and pays pack/unpack for
   each hop, which at the paper's own published constants (5 MB/s
   through the root, ~n*N/2-byte messages) costs more than PEX's extra
   per-message overheads.  Notably the paper's own Table 5 agrees with
   *us* rather than with its Figures 6-8 narrative: at 256 processors /
   512-byte blocks it reports REX slower than PEX (2.160 s vs 1.738 s),
   and our Table 5 reproduction shows the same ordering.
2. **BEX's margin over PEX is small and size-dependent.**  We reproduce
   BEX < PEX for large messages (~2 KB at every machine size, and in
   the Table 5 FFT's large arrays), but at 256-512 bytes PEX keeps a
   few-percent edge where Figure 6's text says BEX is best.  The
   paper's own Table 11 shows PS/BS within 0.3% of each other, so an
   effect of this size sitting inside the model's noise floor is
   consistent with the publication.
3. **Broadcast crossover positions.**  On 32 nodes REB overtakes the
   system broadcast between 512 B and 2 KB (paper: "more than 1K byte")
   — reproduced.  At 256 nodes the paper reports a 2 KB crossover; in
   our model REB's lg(N) store-and-forward hops keep it behind the
   (machine-size-independent) control network until ~16 KB.  Both
   models agree the crossover moves right with machine size.
4. **Table 12 absolute times are 2-4x below the paper's.**  Our
   synthesized meshes reproduce the paper's density/bytes *statistics*
   (documented per-workload in the benchmark output), but the original
   NASA patterns evidently carried more traffic per iteration than the
   statistics alone imply.  Rankings (greedy best, linear worst) are
   reproduced on every workload.
5. **Calibration provenance.**  Hardware constants are the paper's
   (88 us latency, 20-byte packets, 20/10/5 MB/s levels).  Software
   constants were fit against Table 11 anchors (see
   `repro.analysis.calibrate`); the frozen defaults give Table 11's
   pairwise column within ~10% absolute.
"""


def _fmt_params() -> str:
    p = DEFAULT_PARAMS
    return (
        f"send_overhead={p.send_overhead * 1e6:.0f}us, "
        f"recv_overhead={p.recv_overhead * 1e6:.0f}us, "
        f"wire_latency={p.wire_latency * 1e6:.0f}us, "
        f"levels={p.bw_level1 / 1e6:.0f}/{p.bw_level2 / 1e6:.0f}/"
        f"{p.bw_level3 / 1e6:.0f} MB/s, "
        f"memcpy={p.memcpy_bandwidth / 1e6:.0f} MB/s, "
        f"contention={p.switch_contention} (cap {p.contention_cap}), "
        f"jitter={p.routing_jitter}, "
        f"ctrl_bcast={p.control_broadcast_bandwidth / 1e6:.2f} MB/s, "
        f"node={p.node_flops / 1e6:.1f} MFLOPS"
    )


def _checks_block(checks: List[ShapeCheck]) -> str:
    lines = [f"- {'PASS' if c.passed else 'FAIL'} — {c.name}: {c.detail}" for c in checks]
    n = sum(c.passed for c in checks)
    lines.append(f"- **{n}/{len(checks)} shape checks passed**")
    return "\n".join(lines)


def _fig5_section() -> str:
    sizes = (0, 256, 512, 1920)
    rows = {
        s: {a: exchange_time(a, 32, s) * 1e3 for a in paper_data.EXCHANGE_ORDER}
        for s in sizes
    }
    table = format_comparison(
        "Figure 5 (complete exchange, 32 nodes, ms)",
        paper_data.EXCHANGE_ORDER,
        [(f"{s}B", rows[s], None) for s in sizes],
    )
    checks = [
        check_ratio_at_least("LEX >> PEX @256B", rows[256]["linear"], rows[256]["pairwise"], 4.0),
        check_order("REX best @0B", {k: v for k, v in rows[0].items() if k != "linear"}, "recursive"),
        check_order("BEX best @1920B", {k: v for k, v in rows[1920].items() if k != "linear"}, "balanced", tolerance=0.05),
    ]
    return f"```\n{table}\n```\n\n{_checks_block(checks)}"


def _fig678_section() -> str:
    out = []
    for nbytes in (0, 256, 512, 1920):
        fig = fig678_data(nbytes)
        out.append(f"**{nbytes}-byte messages** (ms by machine size):\n\n```\n{fig.to_csv()}```")
    checks = []
    for n in (16, 64, 256):
        checks.append(
            check_order(
                f"REX best @0B N={n}",
                {a: exchange_time(a, n, 0) for a in ("pairwise", "recursive", "balanced")},
                "recursive",
            )
        )
    checks.append(
        check_order(
            "BEX best @1920B N=256",
            {a: exchange_time(a, 256, 1920) for a in ("pairwise", "balanced")},
            "balanced",
            tolerance=0.05,
        )
    )
    return "\n\n".join(out) + "\n\n" + _checks_block(checks)


def _table5_section() -> str:
    data = table5_data()
    blocks = [
        (f"P={p} {n}x{n}", row, paper_data.TABLE5_FFT_SECONDS.get((p, n)))
        for (p, n), row in sorted(data.items())
    ]
    table = format_comparison(
        "Table 5 (2-D FFT, seconds)", paper_data.EXCHANGE_ORDER, blocks, unit="s"
    )
    checks = []
    for (p, n), row in sorted(data.items()):
        checks.append(
            check_ratio_at_least(
                f"linear worst P={p} n={n}",
                row["linear"],
                min(v for k, v in row.items() if k != "linear"),
                1.0,
            )
        )
    return f"```\n{table}\n```\n\n{_checks_block(checks)}"


def _broadcast_section() -> str:
    sizes = [256, 512, 1024, 2048, 4096, 8192]
    reb = [broadcast_time("reb", 32, s) for s in sizes]
    sysb = [broadcast_time("system", 32, s) for s in sizes]
    lib1k = broadcast_time("lib", 32, 1024)
    x32 = crossover_x(sizes, sysb, reb)
    checks = [
        check_ratio_at_least("LIB >> REB @1KB", lib1k, broadcast_time("reb", 32, 1024), 3.0),
        ShapeCheck(
            "crossover on 32 nodes",
            x32 is not None and 256 <= x32 <= 4096,
            f"REB overtakes the system broadcast at ~{x32:.0f} B (paper: >1 KB)"
            if x32
            else "no crossover found",
        ),
        ShapeCheck(
            "system broadcast flat in machine size",
            abs(broadcast_time("system", 256, 2048) - broadcast_time("system", 32, 2048))
            / broadcast_time("system", 32, 2048)
            < 0.05,
            "32 vs 256 nodes within 5%",
        ),
    ]
    fig = fig10_data(nprocs=32)
    return f"```\n{fig.to_csv()}```\n\n{_checks_block(checks)}"


def _table11_section() -> str:
    data = table11_data()
    blocks = []
    checks = []
    for (d, s), row in sorted(data.items()):
        ms = {k: v * 1e3 for k, v in row.items()}
        blocks.append((f"{d:.0%} {s}B", ms, paper_data.TABLE11_SYNTHETIC_MS.get((d, s))))
        if d < 0.5:
            checks.append(check_order(f"greedy near-best {d:.0%}/{s}B", ms, "greedy", tolerance=0.12))
        checks.append(
            check_ratio_at_least(
                f"linear worst {d:.0%}/{s}B",
                ms["linear"],
                max(v for k, v in ms.items() if k != "linear"),
                1.0,
            )
        )
    table = format_comparison(
        "Table 11 (synthetic irregular patterns, 32 nodes, ms)",
        paper_data.IRREGULAR_ORDER,
        blocks,
    )
    return f"```\n{table}\n```\n\n{_checks_block(checks)}"


def _table12_section() -> str:
    data, loads = table12_data()
    blocks = []
    checks = []
    for name, row in data.items():
        ms = {k: v * 1e3 for k, v in row.items()}
        blocks.append((name, ms, paper_data.TABLE12_REAL_MS.get(name)))
        checks.append(check_order(f"greedy near-best on {name}", ms, "greedy", tolerance=0.15))
    table = format_comparison(
        "Table 12 (real application patterns, 32 nodes, ms)",
        paper_data.IRREGULAR_ORDER,
        blocks,
    )
    stats = "\n".join(f"- {wl.describe()}" for wl in loads.values())
    return f"```\n{table}\n```\n\nWorkload statistics:\n\n{stats}\n\n{_checks_block(checks)}"


def _schedule_tables_section() -> str:
    from ..schedules import (
        balanced_schedule,
        greedy_schedule,
        linear_schedule,
        paper_pattern_P,
        pairwise_schedule,
    )

    P = paper_pattern_P()
    counts = {
        "LS (Table 7)": (linear_schedule(P).nsteps, 8),
        "PS (Table 8)": (pairwise_schedule(P).nsteps, 6),
        "BS (Table 9)": (balanced_schedule(P).nsteps, 7),
        "GS (Table 10)": (greedy_schedule(P).nsteps, 6),
    }
    lines = [
        "Tables 1-4 (LEX/PEX/REX/BEX schedules) and Tables 7-10 (LS/PS/BS/GS",
        "schedules of the example pattern 'P', Table 6) are reproduced",
        "*entry for entry* — see `tests/schedules/test_exchange_algorithms.py`",
        "and `tests/schedules/test_irregular.py` (GS matches every cell of",
        "Table 10, including the step-5 subtlety where 7->1 must wait for",
        "step 6's exchange).  Step counts on pattern 'P':",
        "",
    ]
    for name, (ours, paper) in counts.items():
        mark = "ok" if ours == paper else "MISMATCH"
        lines.append(f"- {name}: measured {ours} steps, paper {paper} ({mark})")
    return "\n".join(lines)


def build_experiments_markdown() -> str:
    """Assemble the full EXPERIMENTS.md content from live measurements."""
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `cm5-repro report` from the same cache-backed",
        "measurement functions the benchmarks use; regenerate any entry",
        "with `pytest benchmarks/ --benchmark-only` or `cm5-repro <exhibit>`.",
        "",
        f"Calibrated model: {_fmt_params()}.",
        "",
        "Units: milliseconds unless stated; paper rows transcribed from the",
        "publication.  The reproduction's contract is *shape* (orderings,",
        "factors, crossovers); absolute agreement is reported where the",
        "paper publishes numbers.",
        "",
        "## Tables 1-4 and 6-10 — the example schedules",
        "",
        _schedule_tables_section(),
        "",
        "## Figure 5 — complete exchange vs message size (32 nodes)",
        "",
        _fig5_section(),
        "",
        "## Figures 6-8 — complete exchange vs machine size",
        "",
        _fig678_section(),
        "",
        "## Table 5 — 2-D FFT",
        "",
        _table5_section(),
        "",
        "## Figures 10-11 — broadcast",
        "",
        _broadcast_section(),
        "",
        "## Table 11 — synthetic irregular patterns",
        "",
        _table11_section(),
        "",
        "## Table 12 — real application patterns",
        "",
        _table12_section(),
        "",
        _DEVIATION_NOTES,
    ]
    return "\n".join(parts) + "\n"
