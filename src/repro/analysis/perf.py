"""Hot-path performance benchmark: canonical workloads, machine-readable.

The fluid-network hot path (struct-of-arrays flow store + compiled
progressive-filling kernel, see :mod:`repro.machine.contention` and
:mod:`repro.machine.bandwidth`) is a performance surface that regresses
silently: traces stay byte-identical while wall-clock drifts.  This
module times a fixed set of canonical workloads end to end and writes
the results as a ``BENCH_sim.json`` file that
:mod:`repro.analysis.perfcmp` can diff across revisions.

Workloads (full scale):

* complete exchanges — PEX / BEX / REX at 32, 128, 256 and 1024 nodes,
  512 B per pair (the Fig. 5-8 regime extended to the paper's largest
  machine; 256-node PEX is the headline number);
* irregular — greedy schedules of the Table 11 synthetic patterns
  (32 nodes, densities 25/50/75 %, 512 B);
* fault-injected — a 16-node PEX under a straggler + message drops + a
  degraded link, exercising the retry and degraded-allocation paths.

``quick=True`` shrinks the exchange sweep to 16/32 nodes and one
density for CI smoke runs.

The JSON schema (``repro-bench-sim/1``)::

    {
      "schema": "repro-bench-sim/1",
      "scale": "full" | "quick",
      "kernel": "<fastfill kernel state>",
      "workloads": {
        "<name>": {
          "wall_seconds": <host seconds to simulate>,
          "sim_ms": <simulated milliseconds (the model's answer)>,
          "messages": <point-to-point message count>,
          "layers": {"build": <s>, "execute": <s>}
        }, ...
      }
    }

``wall_seconds`` is the perf payload; ``sim_ms`` doubles as a cheap
correctness canary (it must not move at all between revisions unless
the model itself changed).  ``layers`` splits the best rep's wall time
by span category (schedule construction vs simulation), measured with a
rep-local :class:`repro.obs.Tracer` — *not* a globally installed one,
so the engine's op recording never runs and the timed path is identical
to an untraced run.  ``perfcmp`` ignores the key; it exists so a
regression in the diff can be attributed to a layer at a glance.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..faults import FaultPlan, LinkDegrade, MessageDrop, NodeStraggler
from ..machine import CM5Params, MachineConfig
from ..machine._fastfill import kernel_description
from ..obs import Tracer
from ..schedules import (
    CommPattern,
    balanced_exchange,
    execute_schedule,
    greedy_schedule,
    pairwise_exchange,
    recursive_exchange,
)

__all__ = [
    "BENCH_SCHEMA",
    "perf_workloads",
    "run_perf",
    "render_report",
    "write_bench",
]

BENCH_SCHEMA = "repro-bench-sim/1"

_EXCHANGES = (
    ("pex", pairwise_exchange),
    ("bex", balanced_exchange),
    ("rex", recursive_exchange),
)

#: Bytes per pair in the exchange sweep (Fig. 7's size).
_EXCHANGE_BYTES = 512
#: Table 11 regime for the irregular workloads.
_IRR_NPROCS = 32
_IRR_BYTES = 512
_IRR_SEED = 42

_FAULT_PLAN = FaultPlan(
    (NodeStraggler(5, 8.0), MessageDrop(0.02), LinkDegrade(2, 0, 0.5)),
    seed=7,
)


@dataclass(frozen=True)
class _Workload:
    """One timed workload, split so the timer can attribute layers.

    ``build`` constructs the schedule, ``execute`` simulates it; the
    harness times each under its own span and reports the split as the
    workload's ``layers``.
    """

    name: str
    build: Callable[[], "object"]  # -> Schedule
    execute: Callable[["object"], "object"]  # Schedule -> ExecutionResult


def perf_workloads(quick: bool = False) -> List[_Workload]:
    """The canonical workload list, in execution order."""
    machines = (16, 32) if quick else (32, 128, 256, 1024)
    densities = (0.50,) if quick else (0.25, 0.50, 0.75)
    loads: List[_Workload] = []
    for n in machines:
        for label, build in _EXCHANGES:
            loads.append(
                _Workload(
                    f"{label}_n{n}_b{_EXCHANGE_BYTES}",
                    lambda n=n, build=build: build(n, _EXCHANGE_BYTES),
                    lambda sched, n=n: execute_schedule(sched, MachineConfig(n)),
                )
            )
    for d in densities:
        pattern = CommPattern.synthetic(_IRR_NPROCS, d, _IRR_BYTES, seed=_IRR_SEED)
        loads.append(
            _Workload(
                f"irr_d{int(d * 100)}_greedy",
                lambda pattern=pattern: greedy_schedule(pattern),
                lambda sched: execute_schedule(sched, MachineConfig(_IRR_NPROCS)),
            )
        )
    loads.append(
        _Workload(
            "fault_pex_n16_b256",
            lambda: pairwise_exchange(16, 256),
            lambda sched: execute_schedule(
                sched,
                MachineConfig(16, CM5Params(routing_jitter=0.0)),
                faults=_FAULT_PLAN,
                trace=True,
            ),
        )
    )
    return loads


_WARMED = False


def _warm_up() -> None:
    """Untimed warm-up: absorb one-off costs (kernel dlopen, NumPy ufunc
    setup, import side effects) so the first timed workload is
    comparable to the rest — and quick vs full runs to each other.
    Runs once per process (worker processes warm up on first task)."""
    global _WARMED
    if not _WARMED:
        execute_schedule(pairwise_exchange(8, 64), MachineConfig(8))
        _WARMED = True


def _time_workload(spec: "Tuple[str, bool]") -> "Tuple[str, Dict[str, object]]":
    """Worker: time one named workload of the ``quick``/full list.

    Module-level and addressed by *name* (the workload lambdas don't
    pickle) so ``run_perf`` can fan workloads out over a process pool
    via :func:`repro.analysis.replicate.replicate`.
    """
    name, quick = spec
    _warm_up()
    for wl in perf_workloads(quick):
        if wl.name == name:
            break
    else:
        raise ValueError(f"unknown perf workload {name!r}")
    # Short workloads are re-run and the minimum kept: scheduler
    # noise on sub-second timings easily exceeds any regression
    # threshold, while the minute-scale sweeps stay single-shot.
    # Five reps, not three — the batched engine shrank the quick
    # workloads to tens of milliseconds, where a min-of-3 still
    # carries enough jitter to trip a 25 % CI threshold.
    wall = float("inf")
    layers: Dict[str, float] = {}
    for rep in range(5):
        tracer = Tracer()
        t0 = time.perf_counter()
        with tracer.span("build", category="build"):
            sched = wl.build()
        with tracer.span("execute", category="execute"):
            res = wl.execute(sched)
        elapsed = time.perf_counter() - t0
        if elapsed < wall:
            wall = elapsed
            layers = tracer.category_seconds()
        if wall >= 1.0:
            break
    return name, {
        "wall_seconds": round(wall, 4),
        "sim_ms": res.time_ms,
        "messages": res.sim.message_count,
        "layers": {k: round(v, 4) for k, v in sorted(layers.items())},
    }


def run_perf(
    quick: bool = False,
    progress: "Callable[[str], None] | None" = None,
    jobs: int = 0,
) -> Dict[str, object]:
    """Time every canonical workload; returns the BENCH document.

    ``jobs`` fans workloads out over a process pool (``jobs=0`` = the
    sequential reference behavior).  Parallel replicas share cores, so
    individual wall timings are noisier than a sequential run — use
    ``jobs`` to cut regeneration latency, and compare like with like
    (sequential baseline vs sequential current) when the numbers feed
    ``perfcmp`` at a tight threshold.  ``sim_ms`` and ``messages`` are
    deterministic at any job count.
    """
    from .replicate import replicate

    _warm_up()
    specs = [(wl.name, quick) for wl in perf_workloads(quick)]

    def _report(item: "Tuple[str, Dict[str, object]]") -> None:
        if progress is not None:
            name, row = item
            progress(
                f"{name:<24} {row['wall_seconds']:8.2f}s wall   "
                f"{row['sim_ms']:10.3f} sim-ms"
            )

    rows = replicate(_time_workload, specs, jobs=jobs, progress=_report)
    return {
        "schema": BENCH_SCHEMA,
        "scale": "quick" if quick else "full",
        "kernel": kernel_description(),
        "workloads": {name: row for name, row in rows},
    }


def render_report(bench: Dict[str, object]) -> str:
    """Fixed-width text rendering of one BENCH document."""
    lines = [
        f"Hot-path perf benchmark ({bench['scale']} scale)",
        f"allocation kernel: {bench['kernel']}",
        "",
        f"{'workload':<24} {'wall s':>10} {'sim ms':>12} {'messages':>9}",
    ]
    for name, row in bench["workloads"].items():
        layers = row.get("layers") or {}
        split = "  " + " ".join(
            f"{k}={layers[k]:.2f}s" for k in sorted(layers)
        ) if layers else ""
        lines.append(
            f"{name:<24} {row['wall_seconds']:10.2f} "
            f"{row['sim_ms']:12.3f} {row['messages']:9d}{split}"
        )
    return "\n".join(lines)


def write_bench(bench: Dict[str, object], path) -> None:
    """Serialize one BENCH document (stable key order, trailing newline)."""
    with open(path, "w") as fh:
        json.dump(bench, fh, indent=2)
        fh.write("\n")
