"""Analysis: paper data, table/figure rendering, shape checks, calibration.

* :mod:`repro.analysis.paper_data` — the paper's published numbers;
* :mod:`repro.analysis.experiments` — regenerate every table/figure;
* :mod:`repro.analysis.tables` / :mod:`repro.analysis.figures` — output
  rendering (fixed-width tables, ASCII plots, CSV);
* :mod:`repro.analysis.compare` — shape checks (orderings, factors,
  crossovers);
* :mod:`repro.analysis.calibrate` — provenance of the model constants;
* :mod:`repro.analysis.cache` — persistent memo of expensive runs;
* :mod:`repro.analysis.perf` / :mod:`repro.analysis.perfcmp` — hot-path
  wall-clock benchmark (``BENCH_sim.json``) and regression diffing;
* :mod:`repro.analysis.conformance` — cross-backend agreement harness
  (``results/conformance.{txt,json}``);
* :mod:`repro.analysis.optgap` — optimality gaps vs makespan lower
  bounds (``results/optgap.{txt,json}``).
"""

from .cache import SimCache, default_cache
from .compare import (
    ShapeCheck,
    check_order,
    check_ratio_at_least,
    check_within_factor,
    crossover_x,
    summarize,
)
from .figures import FigureData, Series, ascii_plot
from .paper_data import (
    EXCHANGE_ORDER,
    FIGURE_CLAIMS,
    IRREGULAR_ORDER,
    TABLE5_FFT_SECONDS,
    TABLE11_SYNTHETIC_MS,
    TABLE12_REAL_MS,
    TABLE12_STATS,
)
from .tables import format_comparison, format_table, paired_rows
from .experiments import (
    BROADCAST_KINDS,
    EXCHANGE_ALGS,
    broadcast_time,
    exchange_time,
    fft_time,
    fig5_data,
    fig678_data,
    fig10_data,
    fig11_data,
    irregular_time,
    table5_data,
    table11_data,
    table12_data,
)
from .calibrate import Anchor, CalibrationResult, anchors_from_table11, evaluate, fit
from .perf import perf_workloads, render_report, run_perf, write_bench
from .replicate import digest_result, replicate, run_digest
from .perfcmp import (
    PerfComparison,
    PerfDelta,
    compare_benches,
    load_bench,
    render_comparison,
)
from .conformance import (
    ConformanceReport,
    backend_times,
    conformance_json,
    render_conformance,
    run_conformance,
    write_conformance,
)
from .optgap import (
    OptgapReport,
    optgap_json,
    pattern_gaps,
    render_optgap,
    run_optgap,
    write_optgap,
)
from .visualize import render_fat_tree, render_message_gantt
from .sensitivity import SensitivityResult, sweep_parameter

__all__ = [
    "SimCache",
    "default_cache",
    "ShapeCheck",
    "check_order",
    "check_ratio_at_least",
    "check_within_factor",
    "crossover_x",
    "summarize",
    "FigureData",
    "Series",
    "ascii_plot",
    "EXCHANGE_ORDER",
    "FIGURE_CLAIMS",
    "IRREGULAR_ORDER",
    "TABLE5_FFT_SECONDS",
    "TABLE11_SYNTHETIC_MS",
    "TABLE12_REAL_MS",
    "TABLE12_STATS",
    "format_comparison",
    "format_table",
    "paired_rows",
    "BROADCAST_KINDS",
    "EXCHANGE_ALGS",
    "broadcast_time",
    "exchange_time",
    "fft_time",
    "fig5_data",
    "fig678_data",
    "fig10_data",
    "fig11_data",
    "irregular_time",
    "table5_data",
    "table11_data",
    "table12_data",
    "perf_workloads",
    "render_report",
    "run_perf",
    "write_bench",
    "digest_result",
    "replicate",
    "run_digest",
    "PerfComparison",
    "PerfDelta",
    "compare_benches",
    "load_bench",
    "render_comparison",
    "Anchor",
    "CalibrationResult",
    "anchors_from_table11",
    "evaluate",
    "fit",
    "ConformanceReport",
    "backend_times",
    "conformance_json",
    "render_conformance",
    "run_conformance",
    "write_conformance",
    "OptgapReport",
    "optgap_json",
    "pattern_gaps",
    "render_optgap",
    "run_optgap",
    "write_optgap",
    "render_fat_tree",
    "render_message_gantt",
    "SensitivityResult",
    "sweep_parameter",
]
