"""Diff two ``BENCH_sim.json`` files and flag wall-clock regressions.

The perf harness (:mod:`repro.analysis.perf`) emits machine-readable
timing documents; this module compares a *baseline* against a *current*
run::

    python -m repro perfcmp --baseline benchmarks/BENCH_baseline.json \
        --current BENCH_sim.json --threshold 0.25

A workload regresses when its wall time exceeds the baseline by more
than ``threshold`` (default 10 %).  ``sim_ms`` is also cross-checked:
simulated time must be *identical* between runs of the same workload —
a drift there is a correctness problem masquerading as a perf delta,
and is reported as such (machine differences change wall clock, never
simulated milliseconds).

Both BENCH families are accepted — ``repro-bench-sim/*`` (the hot-path
perf harness) and ``repro-bench-service/*`` (the scheduling-service
bench) — but baseline and current must come from the *same* family.
Different *versions* within a family (``repro-bench-service/1`` vs
``/2``) compare on the fields both carry: the ``sim_ms`` drift check
applies only to workloads where *both* documents carry the field, and
a cross-version or missing-field comparison is noted with one line in
the report rather than silently judged or rejected.

Both documents must also declare the *same* ``"scale"`` (``"quick"`` vs
``"full"``): a quick run judged against a full baseline (or vice versa)
compares different workload sweeps under different rep counts and is
meaningless — that mismatch, or a document missing the ``scale`` field
entirely (an artifact written by an older harness, or clobbered by a
smoke run), is a hard error, not a warning.

Workloads present in only one file are listed per name *and* counted in
the summary line, but never judged as regressions (the intersection is
what is judged).  A workload whose baseline wall time is zero or
negative is a hard error — such a baseline can never flag a regression,
so silently accepting it would turn the comparison into a no-op.

A regression must clear the relative ``threshold`` *and* an absolute
``min_delta`` floor (default 0.05 s).  The batched engine shrank the
quick workloads to single-digit milliseconds, where between-process
scheduler noise alone is 30-80 % of the wall time — a purely relative
threshold there flags noise, not regressions.  The floor is far below
any change worth acting on (a genuine order-of-magnitude engine
regression moves even a 10 ms workload past it, and full-scale
workloads dwarf it), so it suppresses only the noise band.  Pass
``--min-delta 0`` to restore the pure-relative behavior.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

__all__ = ["PerfDelta", "PerfComparison", "load_bench", "compare_benches", "render_comparison"]

#: Default relative wall-clock slack before a workload counts as regressed.
DEFAULT_THRESHOLD = 0.10

#: Default absolute wall-clock floor (seconds): deltas below this are
#: scheduler noise on millisecond-scale workloads, whatever the ratio.
DEFAULT_MIN_DELTA = 0.05


#: BENCH schema families perfcmp understands.  Every family's workloads
#: carry ``wall_seconds``; ``sim_ms`` cross-checking only applies where
#: present (the service schema has no simulated time).
_SCHEMA_FAMILIES = ("repro-bench-sim/", "repro-bench-service/")


def _schema_family(doc: Dict[str, object]) -> str:
    schema = str(doc.get("schema", ""))
    return schema.split("/")[0] + "/"


def load_bench(path) -> Dict[str, object]:
    """Load and minimally validate one BENCH document."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "workloads" not in doc:
        raise ValueError(f"{path}: not a BENCH document (no 'workloads' key)")
    schema = doc.get("schema", "")
    if not any(str(schema).startswith(f) for f in _SCHEMA_FAMILIES):
        raise ValueError(f"{path}: unknown BENCH schema {schema!r}")
    return doc


@dataclass(frozen=True)
class PerfDelta:
    """One workload's baseline-vs-current comparison."""

    name: str
    baseline_s: float
    current_s: float
    #: (current - baseline) / baseline
    ratio: float
    regressed: bool
    #: Simulated time moved between runs — a correctness red flag.
    sim_drift: bool


@dataclass
class PerfComparison:
    """Full comparison of two BENCH documents."""

    threshold: float
    min_delta: float = DEFAULT_MIN_DELTA
    deltas: List[PerfDelta] = field(default_factory=list)
    only_baseline: List[str] = field(default_factory=list)
    only_current: List[str] = field(default_factory=list)
    #: One-line notices (cross-version compare, skipped drift checks) —
    #: informational, never failures.
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[PerfDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def sim_drifts(self) -> List[PerfDelta]:
        return [d for d in self.deltas if d.sim_drift]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.sim_drifts


def compare_benches(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> PerfComparison:
    """Compare per-workload wall times; see the module docstring."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if min_delta < 0:
        raise ValueError(f"min_delta must be non-negative, got {min_delta}")
    if _schema_family(baseline) != _schema_family(current):
        raise ValueError(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"current {current.get('schema')!r}; comparing a sim bench "
            "against a service bench is meaningless"
        )
    b_scale, c_scale = baseline.get("scale"), current.get("scale")
    if b_scale is None or c_scale is None:
        # An artifact without the field predates the scale stamp or was
        # clobbered by a harness that dropped it; judging it silently
        # is how a quick smoke run overwrites a full baseline unnoticed.
        missing = " and ".join(
            role
            for role, scale in (("baseline", b_scale), ("current", c_scale))
            if scale is None
        )
        raise ValueError(
            f"{missing} BENCH document missing the 'scale' field; "
            "regenerate the artifact with the current harness"
        )
    if b_scale != c_scale:
        raise ValueError(
            f"scale mismatch: baseline is {b_scale!r} but current is "
            f"{c_scale!r}; quick and full runs time different sweeps and "
            "must not be judged against each other"
        )
    base_wl: Dict[str, dict] = baseline["workloads"]  # type: ignore[assignment]
    cur_wl: Dict[str, dict] = current["workloads"]  # type: ignore[assignment]
    cmp = PerfComparison(threshold=threshold, min_delta=min_delta)
    if baseline.get("schema") != current.get("schema"):
        cmp.notes.append(
            f"cross-version compare: baseline {baseline.get('schema')!r} "
            f"vs current {current.get('schema')!r}; judging shared fields "
            "only"
        )
    cmp.only_baseline = sorted(set(base_wl) - set(cur_wl))
    cmp.only_current = sorted(set(cur_wl) - set(base_wl))
    drift_skipped: List[str] = []
    for name in (n for n in cur_wl if n in base_wl):
        b, c = base_wl[name], cur_wl[name]
        base_s = float(b["wall_seconds"])
        cur_s = float(c["wall_seconds"])
        if base_s <= 0:
            # A zero/negative baseline would make every current time
            # "not a regression" — that is a broken baseline capture,
            # not a pass, and must stop the comparison loudly.
            raise ValueError(
                f"workload {name!r}: non-positive baseline wall time "
                f"{base_s}; recapture the baseline BENCH file"
            )
        ratio = (cur_s - base_s) / base_s
        # Simulated time must be identical — but only when both sides
        # recorded it.  One-sided sim_ms (a cross-version compare, or a
        # field the schema never had) is a skipped check, not a drift.
        both_sim = "sim_ms" in b and "sim_ms" in c
        if ("sim_ms" in b) != ("sim_ms" in c):
            drift_skipped.append(name)
        cmp.deltas.append(
            PerfDelta(
                name=name,
                baseline_s=base_s,
                current_s=cur_s,
                ratio=ratio,
                regressed=ratio > threshold and (cur_s - base_s) > min_delta,
                sim_drift=both_sim and b["sim_ms"] != c["sim_ms"],
            )
        )
    if drift_skipped:
        cmp.notes.append(
            "sim_ms drift check skipped for "
            f"{len(drift_skipped)} workload(s) with the field on one "
            f"side only: {', '.join(sorted(drift_skipped))}"
        )
    return cmp


def render_comparison(cmp: PerfComparison) -> str:
    """Fixed-width report; one line per compared workload."""
    lines = [
        f"{'workload':<24} {'base s':>9} {'cur s':>9} {'delta':>8}  verdict",
    ]
    for d in cmp.deltas:
        verdict = "ok"
        if d.regressed:
            verdict = f"REGRESSED (> {cmp.threshold:.0%})"
        elif d.ratio > cmp.threshold:
            verdict = f"ok (within {cmp.min_delta:g}s noise floor)"
        if d.sim_drift:
            verdict += " SIM-DRIFT"
        lines.append(
            f"{d.name:<24} {d.baseline_s:9.2f} {d.current_s:9.2f} "
            f"{d.ratio:+7.1%}  {verdict}"
        )
    for note in cmp.notes:
        lines.append(f"note: {note}")
    for name in cmp.only_baseline:
        lines.append(f"{name:<24} (baseline only — skipped)")
    for name in cmp.only_current:
        lines.append(f"{name:<24} (current only — skipped)")
    n_reg, n_drift = len(cmp.regressions), len(cmp.sim_drifts)
    skipped = ""
    if cmp.only_baseline or cmp.only_current:
        skipped = (
            f" ({len(cmp.only_baseline)} baseline-only, "
            f"{len(cmp.only_current)} current-only workload(s) skipped)"
        )
    if cmp.ok:
        lines.append(f"OK: no regressions beyond {cmp.threshold:.0%}{skipped}")
    else:
        lines.append(
            f"FAIL: {n_reg} regression(s) beyond {cmp.threshold:.0%}, "
            f"{n_drift} simulated-time drift(s){skipped}"
        )
    return "\n".join(lines)
