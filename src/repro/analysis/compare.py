"""Shape checks: does a measured result tell the paper's story?

The reproduction does not chase absolute 1992 microseconds — it checks
*orderings* (who wins), *factors* (by roughly how much), and
*crossovers* (where the winner changes).  Each check returns a
:class:`ShapeCheck` so benchmarks can both print and assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ShapeCheck",
    "check_order",
    "check_ratio_at_least",
    "check_within_factor",
    "crossover_x",
    "summarize",
]


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative comparison."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def check_order(
    name: str,
    values: Dict[str, float],
    expected_best: str,
    tolerance: float = 0.0,
) -> ShapeCheck:
    """Check that ``expected_best`` has the (near-)smallest value.

    ``tolerance`` allows the expected winner to trail the actual best by
    that relative margin — the paper's own near-ties (PS vs BS) motivate
    a small slack.
    """
    if expected_best not in values:
        raise KeyError(f"{expected_best!r} not among {sorted(values)}")
    best = min(values, key=lambda k: values[k])
    passed = values[expected_best] <= values[best] * (1.0 + tolerance)
    ordered = sorted(values.items(), key=lambda kv: kv[1])
    detail = "  ".join(f"{k}={v:.3g}" for k, v in ordered)
    return ShapeCheck(name, passed, f"expected {expected_best} best; {detail}")


def check_ratio_at_least(
    name: str,
    slow: float,
    fast: float,
    factor: float,
) -> ShapeCheck:
    """Check ``slow >= factor * fast`` (e.g. LEX at least 3x PEX)."""
    if fast <= 0:
        raise ValueError("fast value must be positive")
    ratio = slow / fast
    return ShapeCheck(
        name,
        ratio >= factor,
        f"ratio={ratio:.2f} (required >= {factor:.2f})",
    )


def check_within_factor(
    name: str,
    measured: float,
    reference: float,
    factor: float,
) -> ShapeCheck:
    """Check measured and reference agree within a multiplicative factor."""
    if measured <= 0 or reference <= 0:
        raise ValueError("values must be positive")
    ratio = max(measured / reference, reference / measured)
    return ShapeCheck(
        name,
        ratio <= factor,
        f"measured={measured:.3g} paper={reference:.3g} "
        f"off by {ratio:.2f}x (allowed {factor:.2f}x)",
    )


def crossover_x(
    xs: Sequence[float], ya: Sequence[float], yb: Sequence[float]
) -> Optional[float]:
    """First x where curve *a* stops being below curve *b* (or vice versa).

    Returns the interpolated crossing point, or None if one curve
    dominates throughout.  Used for the broadcast REB-vs-system and the
    exchange REX-vs-PEX crossovers.
    """
    if not (len(xs) == len(ya) == len(yb)):
        raise ValueError("mismatched series lengths")
    diffs = [a - b for a, b in zip(ya, yb)]
    for i in range(1, len(diffs)):
        if diffs[i - 1] == 0:
            return float(xs[i - 1])
        if diffs[i - 1] * diffs[i] < 0:
            # Linear interpolation of the sign change.
            t = abs(diffs[i - 1]) / (abs(diffs[i - 1]) + abs(diffs[i]))
            return float(xs[i - 1] + t * (xs[i] - xs[i - 1]))
    return None


def summarize(checks: List[ShapeCheck]) -> str:
    """Multi-line report; callers typically print and assert all passed."""
    lines = [str(c) for c in checks]
    n_pass = sum(c.passed for c in checks)
    lines.append(f"--- {n_pass}/{len(checks)} shape checks passed")
    return "\n".join(lines)
