"""Optimality-gap harness: measured makespans vs proven lower bounds.

ROADMAP item 3 asks how far the paper's 1992 heuristics sit from
optimal.  :mod:`repro.schedules.bound` supplies schedule-independent
makespan lower bounds (endpoint serialized work, fat-tree cut loads,
and their LP combination); this harness prices every irregular
scheduler — the paper's LS/PS/BS/GS, the König coloring, and the
local-search refiner — with all three conformance backends and reports
the **gap**::

    gap(algorithm, backend) = measured makespan / lower bound

A gap of 1.0 would be a certified-optimal schedule; every gap must be
>= 1.0 or the bound is unsound (that check is the harness's teeth, and
the ``optgap-smoke`` CI job runs it on every push).  Every schedule is
linted against its pattern before pricing, so a malformed schedule
fails loudly rather than reporting a flattering gap.

Workloads mirror the conformance harness: the Table 11 density sweep
and the Table 12 application patterns at 32 nodes (full scale), or a
small N=8/16 grid (``quick``).  ``write_optgap`` emits
``results/optgap.txt`` and ``results/optgap.json``
(schema ``repro-optgap/1``); the CLI (``python -m repro optgap``) exits
non-zero when any gap dips below 1.0 or any schedule fails the linter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..apps.workloads import paper_workload, workload_names
from ..machine.params import CM5Params, MachineConfig
from ..schedules.bound import LowerBound, makespan_lower_bound
from ..schedules.coloring import coloring_schedule
from ..schedules.irregular import algorithm_names, schedule_irregular
from ..schedules.pattern import CommPattern
from ..schedules.validate import LintError
from .conformance import BACKENDS, backend_times

__all__ = [
    "OPTGAP_SCHEMA",
    "GapEntry",
    "GroupGaps",
    "OptgapReport",
    "pattern_gaps",
    "run_optgap",
    "render_optgap",
    "optgap_json",
    "write_optgap",
]

OPTGAP_SCHEMA = "repro-optgap/1"

#: Slack below 1.0 tolerated before a gap counts as a soundness
#: violation: floating-point rounding only, not model error.
_GAP_SLACK = 1e-9

_TABLE11_DENSITIES_FULL = (0.10, 0.25, 0.50, 0.75)
_TABLE11_DENSITIES_QUICK = (0.10, 0.75)
_TABLE11_SEED = 42


@dataclass(frozen=True)
class GapEntry:
    """One algorithm's measured times and gaps on one pattern."""

    algorithm: str
    #: backend -> measured seconds.
    times: Dict[str, float]
    #: backend -> time / lower bound (1.0 when both are zero).
    gaps: Dict[str, float]

    @property
    def min_gap(self) -> float:
        return min(self.gaps.values())


@dataclass
class GroupGaps:
    """One pattern: its lower bound and every algorithm's gaps."""

    name: str
    nprocs: int
    bound: LowerBound
    entries: List[GapEntry] = field(default_factory=list)
    lint_failures: List[str] = field(default_factory=list)

    def entry(self, algorithm: str) -> Optional[GapEntry]:
        for e in self.entries:
            if e.algorithm == algorithm:
                return e
        return None

    @property
    def local_beats_gs_bs(self) -> bool:
        """Does ``local`` strictly win the fluid makespan vs GS and BS?"""
        local = self.entry("local")
        gs = self.entry("greedy")
        bs = self.entry("balanced")
        if local is None or gs is None or bs is None:
            return False
        return (
            local.times["fluid"] < gs.times["fluid"]
            and local.times["fluid"] < bs.times["fluid"]
        )


@dataclass
class OptgapReport:
    """Full harness outcome."""

    scale: str
    groups: List[GroupGaps] = field(default_factory=list)

    @property
    def unsound(self) -> List[Tuple[str, str, str, float]]:
        """(group, algorithm, backend, gap) entries with gap < 1."""
        out = []
        for g in self.groups:
            for e in g.entries:
                for backend, gap in e.gaps.items():
                    if gap < 1.0 - _GAP_SLACK:
                        out.append((g.name, e.algorithm, backend, gap))
        return out

    @property
    def lint_failures(self) -> List[Tuple[str, str]]:
        return [
            (g.name, msg) for g in self.groups for msg in g.lint_failures
        ]

    @property
    def ok(self) -> bool:
        return not self.unsound and not self.lint_failures

    @property
    def local_wins(self) -> List[str]:
        """Groups where ``local`` strictly beats GS and BS (fluid)."""
        return [g.name for g in self.groups if g.local_beats_gs_bs]


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------
def _gap(time: float, bound: float) -> float:
    if bound <= 0.0:
        # Only an empty pattern has a zero bound; a zero measured time
        # is then (vacuously) optimal.
        return 1.0 if time <= 0.0 else float("inf")
    return time / bound


def pattern_gaps(
    name: str,
    pattern: CommPattern,
    config: MachineConfig,
    algorithms: Optional[Tuple[str, ...]] = None,
) -> GroupGaps:
    """Price every algorithm on one pattern and divide by the bound.

    Schedules are linted (structure, byte conservation, deadlock) by
    :func:`repro.analysis.conformance.backend_times` before pricing; a
    lint failure is recorded in the group instead of aborting the sweep,
    and makes the report fail.
    """
    bound = makespan_lower_bound(pattern, config, config.params)
    group = GroupGaps(name=name, nprocs=pattern.nprocs, bound=bound)
    names = algorithms if algorithms is not None else tuple(algorithm_names())
    builders: List[Tuple[str, Callable[[], object]]] = [
        (alg, (lambda a=alg: schedule_irregular(pattern, a))) for alg in names
    ]
    builders.append(("coloring", lambda: coloring_schedule(pattern)))
    for alg, build in builders:
        try:
            times = backend_times(build(), config, pattern)
        except LintError as exc:
            group.lint_failures.append(f"{alg}: {exc}")
            continue
        gaps = {b: _gap(t, bound.seconds) for b, t in times.items()}
        group.entries.append(GapEntry(algorithm=alg, times=times, gaps=gaps))
    return group


# ----------------------------------------------------------------------
# Workload grid
# ----------------------------------------------------------------------
def run_optgap(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> OptgapReport:
    """Run the gap sweep over the Table 11 / Table 12 grid."""
    params = CM5Params(routing_jitter=0.0)
    report = OptgapReport(scale="quick" if quick else "full")

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def add(name: str, pattern: CommPattern) -> None:
        cfg = MachineConfig(pattern.nprocs, params)
        group = pattern_gaps(name, pattern, cfg)
        report.groups.append(group)
        worst = max((e.gaps["fluid"] for e in group.entries), default=0.0)
        note(
            f"  {name}: bound {group.bound.seconds * 1e3:.3f} ms, "
            f"worst fluid gap {worst:.2f}x"
        )

    if quick:
        # Small machines keep the CI job fast while still exercising
        # every algorithm, every backend, and both bound families.
        note("Table 11 densities (8 and 16 nodes, quick)")
        for nprocs in (8, 16):
            for d in _TABLE11_DENSITIES_QUICK:
                pattern = CommPattern.synthetic(
                    nprocs, d, 256, seed=_TABLE11_SEED
                )
                add(f"table11/n{nprocs}/d{int(d * 100)}/b256", pattern)
        note("Application pattern (16 nodes, quick)")
        add("table12/n16/cg16k", paper_workload("cg16k", 16).pattern)
        return report

    note("Table 11 densities (32 nodes)")
    for d in _TABLE11_DENSITIES_FULL:
        for nbytes in (256, 512):
            pattern = CommPattern.synthetic(32, d, nbytes, seed=_TABLE11_SEED)
            add(f"table11/d{int(d * 100)}/b{nbytes}", pattern)
    note("Table 12 application patterns (32 nodes)")
    for wl_name in workload_names():
        add(f"table12/{wl_name}", paper_workload(wl_name, 32).pattern)
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_optgap(report: OptgapReport) -> str:
    """Fixed-width text report (the results/optgap.txt payload)."""
    lines = [
        f"Optimality gaps vs makespan lower bounds ({report.scale} scale)",
        "gap = measured / bound; 1.00x would be certified optimal",
        "",
    ]
    for g in report.groups:
        lines.append(f"{g.name} ({g.nprocs} nodes)")
        lines.append(f"  {g.bound.describe()}")
        header = f"  {'algorithm':<12}" + "".join(
            f"{b + ' gap':>14}" for b in BACKENDS
        )
        lines.append(header)
        for e in g.entries:
            lines.append(
                f"  {e.algorithm:<12}"
                + "".join(f"{e.gaps[b]:13.2f}x" for b in BACKENDS)
            )
        for msg in g.lint_failures:
            lines.append(f"  LINT FAIL     {msg}")
        if g.local_beats_gs_bs:
            lines.append("  local beats greedy and balanced (fluid)")
        lines.append("")
    wins = report.local_wins
    lines.append(
        f"local-search wins (fluid, vs GS and BS): {len(wins)} pattern(s)"
        + (f" — {', '.join(wins)}" if wins else "")
    )
    for group, alg, backend, gap in report.unsound:
        lines.append(
            f"UNSOUND BOUND   {group}/{alg}: {backend} gap {gap:.4f}x < 1"
        )
    for group, msg in report.lint_failures:
        lines.append(f"LINT FAILURE    {group}: {msg}")
    n = sum(len(g.entries) for g in report.groups)
    if report.ok:
        lines.append(
            f"OK: {len(report.groups)} pattern(s), {n} schedule(s), every "
            f"gap >= 1.0, all schedules lint clean"
        )
    else:
        lines.append(
            f"FAIL: {len(report.unsound)} unsound gap(s), "
            f"{len(report.lint_failures)} lint failure(s)"
        )
    return "\n".join(lines)


def optgap_json(report: OptgapReport) -> Dict[str, object]:
    """Machine-readable document (the results/optgap.json payload)."""
    return {
        "schema": OPTGAP_SCHEMA,
        "scale": report.scale,
        "groups": {
            g.name: {
                "nprocs": g.nprocs,
                "bound": {
                    "seconds": g.bound.seconds,
                    "endpoint": g.bound.endpoint,
                    "endpoint_rank": g.bound.endpoint_rank,
                    "bisection": g.bound.bisection,
                    "bisection_cut": (
                        list(g.bound.bisection_cut)
                        if g.bound.bisection_cut is not None
                        else None
                    ),
                    "lp": g.bound.lp,
                    "binding": g.bound.binding,
                },
                "times_ms": {
                    e.algorithm: {b: t * 1e3 for b, t in e.times.items()}
                    for e in g.entries
                },
                "gaps": {
                    e.algorithm: dict(e.gaps) for e in g.entries
                },
                "lint_failures": list(g.lint_failures),
                "local_beats_gs_bs": g.local_beats_gs_bs,
            }
            for g in report.groups
        },
        "local_wins": report.local_wins,
        "unsound": [
            {"group": grp, "algorithm": alg, "backend": b, "gap": gap}
            for grp, alg, b, gap in report.unsound
        ],
        "ok": report.ok,
    }


def write_optgap(
    report: OptgapReport, results_dir: Path = Path("results")
) -> Tuple[Path, Path]:
    """Write the text and JSON artifacts; return their paths."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    txt = results_dir / "optgap.txt"
    txt.write_text(render_optgap(report) + "\n")
    js = results_dir / "optgap.json"
    with open(js, "w") as fh:
        json.dump(optgap_json(report), fh, indent=2)
        fh.write("\n")
    return txt, js
