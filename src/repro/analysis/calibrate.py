"""Calibration: how the software constants in ``CM5Params`` were chosen.

The paper publishes the hardware constants (88 us latency, 20-byte
packets, 20/10/5 MB/s level bandwidths) but not the software scalars the
model also needs (send/receive CPU overheads, memcpy rate, contention
coefficients).  This module re-derives them by fitting the model to the
paper's *anchor measurements*:

* Table 11's ``pairwise`` column pins the per-step cost of a pairwise
  exchange (overheads + wire) at 256 and 512 bytes;
* Table 11's ``linear`` column pins the receiver service time (the
  serialized-receive pathology);
* the 88 us zero-byte latency pins the overhead sum.

``fit()`` evaluates a coarse grid around the defaults and reports the
parameters minimizing the mean absolute log-error over the anchors —
the values frozen into :data:`DEFAULT_PARAMS` come from exactly this
procedure (see EXPERIMENTS.md).  The fit is deliberately coarse: the
goal is documented provenance, not decimal places.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..machine.params import CM5Params, DEFAULT_PARAMS, MachineConfig
from ..schedules.executor import execute_schedule
from ..schedules.irregular import schedule_irregular
from ..schedules.pattern import CommPattern
from .paper_data import TABLE11_SYNTHETIC_MS

__all__ = ["Anchor", "CalibrationResult", "anchors_from_table11", "evaluate", "fit"]


@dataclass(frozen=True)
class Anchor:
    """One paper measurement the model should land near."""

    label: str
    algorithm: str  # irregular scheduler name
    density: float
    nbytes: int
    paper_ms: float


@dataclass(frozen=True)
class CalibrationResult:
    params: CM5Params
    mean_abs_log_error: float
    per_anchor: Dict[str, Tuple[float, float]]  # label -> (model ms, paper ms)

    def report(self) -> str:
        lines = [
            f"mean |log2(model/paper)| = {self.mean_abs_log_error:.3f}",
            f"{'anchor':28s} {'model ms':>10s} {'paper ms':>10s} {'ratio':>7s}",
        ]
        for label, (model, paper) in sorted(self.per_anchor.items()):
            lines.append(
                f"{label:28s} {model:10.3f} {paper:10.3f} {model / paper:7.2f}"
            )
        return "\n".join(lines)


def anchors_from_table11(
    algorithms: Sequence[str] = ("pairwise", "linear"),
    densities: Sequence[float] = (0.25, 0.50, 0.75),
    sizes: Sequence[int] = (256,),
) -> List[Anchor]:
    """The default anchor set (6 points; cheap enough to grid-search)."""
    anchors = []
    for (d, s), row in TABLE11_SYNTHETIC_MS.items():
        if d in densities and s in sizes:
            for alg in algorithms:
                anchors.append(Anchor(f"{alg}@{d:.0%}/{s}B", alg, d, s, row[alg]))
    return anchors


def evaluate(
    params: CM5Params,
    anchors: Sequence[Anchor],
    nprocs: int = 32,
    seed: int = 42,
) -> CalibrationResult:
    """Model-vs-paper error of one parameter set over the anchors."""
    cfg = MachineConfig(nprocs, params)
    per: Dict[str, Tuple[float, float]] = {}
    err = 0.0
    for a in anchors:
        pattern = CommPattern.synthetic(nprocs, a.density, a.nbytes, seed=seed)
        sched = schedule_irregular(pattern, a.algorithm)
        model_ms = execute_schedule(sched, cfg).time * 1e3
        per[a.label] = (model_ms, a.paper_ms)
        err += abs(math.log2(model_ms / a.paper_ms))
    return CalibrationResult(params, err / max(len(anchors), 1), per)


def fit(
    anchors: Optional[Sequence[Anchor]] = None,
    recv_overheads: Sequence[float] = (45e-6, 55e-6, 65e-6),
    send_overheads: Sequence[float] = (20e-6, 30e-6, 40e-6),
    contentions: Sequence[float] = (0.06, 0.12, 0.20),
    base: Optional[CM5Params] = None,
) -> CalibrationResult:
    """Coarse grid search over the three most influential constants.

    The 88 us zero-byte latency is preserved by adjusting
    ``wire_latency`` to absorb the overhead changes (clamped at 0).
    """
    anchors = list(anchors) if anchors is not None else anchors_from_table11()
    base = base or DEFAULT_PARAMS
    best: Optional[CalibrationResult] = None
    target_zero = base.zero_byte_latency
    for ro in recv_overheads:
        for so in send_overheads:
            wire = max(target_zero - ro - so, 0.0)
            for c in contentions:
                params = replace(
                    base,
                    recv_overhead=ro,
                    send_overhead=so,
                    wire_latency=wire,
                    switch_contention=c,
                )
                result = evaluate(params, anchors)
                if best is None or result.mean_abs_log_error < best.mean_abs_log_error:
                    best = result
    assert best is not None
    return best
