"""Process-parallel replication of deterministic simulation runs.

The simulator is deterministic by contract: the same schedule on the
same machine configuration produces a byte-identical event trace, in
the compiled kernel and in the NumPy fallback, under the batched drain
and the single-pop reference drain.  That contract is what makes
replication embarrassingly parallel — N replicas of a run (or N
distinct workloads) can fan out over a process pool and the digests
must still agree, so the parallel harnesses (``perf --jobs``,
``chaos --jobs``, the determinism smoke tests) render output identical
to a sequential run.

This module is the thin waist between those harnesses and
:class:`repro.service.pool.WorkerPool`:

* :func:`replicate` maps a picklable worker over a spec list with
  ``jobs`` processes (``jobs=0`` = inline, byte-for-byte sequential);
* :func:`run_digest` is the canonical worker — build one exchange
  schedule from a ``(algorithm, nprocs, nbytes)`` spec, execute it with
  tracing, and return the trace digest plus headline numbers;
* :func:`digest_result` condenses one execution into a SHA-256 the
  determinism tests can compare across processes, kernels and drain
  modes.

Workers rebuild everything from the spec tuple: nothing is pickled but
small tuples and result dicts, and a forked worker shares no mutable
state with the parent.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..machine import MachineConfig
from ..schedules import (
    balanced_exchange,
    execute_schedule,
    pairwise_exchange,
    recursive_exchange,
)
from ..service.pool import WorkerPool

__all__ = ["EXCHANGE_BUILDERS", "digest_result", "replicate", "run_digest"]

T = TypeVar("T")
R = TypeVar("R")

#: Exchange builders addressable by spec name (picklable indirection:
#: workers receive the *name*, not a closure).
EXCHANGE_BUILDERS = {
    "pex": pairwise_exchange,
    "bex": balanced_exchange,
    "rex": recursive_exchange,
}


def digest_result(res) -> str:
    """SHA-256 digest of one traced execution's observable behavior.

    Covers the full event stream plus the exact (``repr``-level, i.e.
    every bit of every float) makespan, message count, total wait time
    and finish times — the same surface the byte-identity regression
    oracle pins.  Requires the run to have been traced
    (``execute_schedule(..., trace=True)``).
    """
    sim = res.sim
    h = hashlib.sha256()
    h.update(sim.trace.event_stream().encode())
    h.update(repr(sim.makespan).encode())
    h.update(str(sim.message_count).encode())
    h.update(repr(sum(sim.wait_times)).encode())
    h.update(",".join(repr(f) for f in sim.finish_times).encode())
    return h.hexdigest()


def run_digest(spec: Tuple[str, int, int]) -> Dict[str, object]:
    """Worker: execute one ``(algorithm, nprocs, nbytes)`` exchange.

    Module-level and closure-free so it survives pickling into a worker
    process.  Returns the digest plus the headline numbers a caller
    might want to assert on without re-running.
    """
    algo, nprocs, nbytes = spec
    try:
        build = EXCHANGE_BUILDERS[algo]
    except KeyError:
        raise ValueError(
            f"unknown exchange algorithm {algo!r}; choose from "
            f"{', '.join(sorted(EXCHANGE_BUILDERS))}"
        ) from None
    res = execute_schedule(build(nprocs, nbytes), MachineConfig(nprocs), trace=True)
    return {
        "spec": spec,
        "digest": digest_result(res),
        "makespan": res.sim.makespan,
        "messages": res.sim.message_count,
    }


def replicate(
    fn: Callable[[T], R],
    specs: Sequence[T],
    jobs: int = 0,
    progress: Optional[Callable[[R], None]] = None,
) -> List[R]:
    """Run ``fn`` over ``specs`` with ``jobs`` worker processes.

    Results come back in input order regardless of completion order;
    ``jobs=0`` executes inline (no pickling, no subprocesses).  ``fn``
    must be module-level picklable when ``jobs > 0`` —
    :func:`run_digest` is the canonical choice.
    """
    with WorkerPool(jobs) as pool:
        return pool.map_ordered(fn, specs, progress=progress)
