"""Result cache for expensive simulation sweeps.

A 256-node complete exchange costs minutes of host time; the figure
benchmarks sweep dozens of such points, and pytest-benchmark wants to
call the target more than once.  ``SimCache`` memoizes scalar results
keyed by a stable description, in memory and optionally on disk
(JSON under ``.sim_cache/``), so regenerating all tables and figures is
an incremental operation.

Keys must be fully self-describing (algorithm, nprocs, message size,
every non-default parameter, seed) — two runs with the same key are by
construction identical because the simulator is deterministic.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, Optional

__all__ = ["SimCache", "default_cache"]


class SimCache:
    """Thread-safe memo of float results with optional disk persistence."""

    def __init__(self, path: Optional[Path] = None):
        self._mem: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            try:
                self._mem.update(json.loads(self._path.read_text()))
            except (json.JSONDecodeError, OSError):
                # A corrupt cache is silently rebuilt.
                self._mem = {}

    def get_or_compute(self, key: str, fn: Callable[[], float]) -> float:
        with self._lock:
            if key in self._mem:
                return self._mem[key]
        value = float(fn())
        with self._lock:
            self._mem[key] = value
            self._flush()
        return value

    def _flush(self) -> None:
        if self._path is None:
            return
        tmp = self._path.with_suffix(".tmp")
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(self._mem, indent=0, sort_keys=True))
        os.replace(tmp, self._path)

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            if self._path is not None and self._path.exists():
                self._path.unlink()


_DEFAULT: Optional[SimCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> SimCache:
    """Process-wide cache persisted under the working tree."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            root = Path(os.environ.get("REPRO_CACHE_DIR", ".sim_cache"))
            _DEFAULT = SimCache(root / "results.json")
        return _DEFAULT
