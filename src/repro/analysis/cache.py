"""Result cache for expensive simulation sweeps.

A 256-node complete exchange costs minutes of host time; the figure
benchmarks sweep dozens of such points, and pytest-benchmark wants to
call the target more than once.  ``SimCache`` memoizes scalar results
keyed by a stable description, in memory and optionally on disk
(JSON under ``.sim_cache/``), so regenerating all tables and figures is
an incremental operation.

Keys must be fully self-describing (algorithm, nprocs, message size,
every non-default parameter, seed) — two runs with the same key are by
construction identical because the simulator is deterministic.
"""

from __future__ import annotations

import json
import math
import os
import sys
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, Optional

__all__ = ["SimCache", "default_cache"]


class SimCache:
    """Thread-safe memo of float results with optional disk persistence."""

    def __init__(self, path: Optional[Path] = None):
        self._mem: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            self._load_disk()

    def _load_disk(self) -> None:
        """Load the disk tier, dropping anything that is not str -> float.

        A simulation result is always a finite scalar; a key mapped to a
        list, a string, or ``NaN`` means the file was corrupted or
        hand-edited, and trusting it would silently poison every figure
        built on top.  Bad entries (or a wholly unreadable file) are
        dropped with a one-line warning, never used.
        """
        assert self._path is not None
        try:
            doc = json.loads(self._path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            print(
                f"warning: sim cache {self._path}: unreadable, rebuilding"
                f" ({exc})",
                file=sys.stderr,
            )
            return
        if not isinstance(doc, dict):
            print(
                f"warning: sim cache {self._path}: not a JSON object, "
                "rebuilding",
                file=sys.stderr,
            )
            return
        dropped = 0
        for key, value in doc.items():
            # bool is an int subclass but a type error here all the same;
            # json.loads happily parses NaN/Infinity, which are never
            # legitimate simulation results.
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and math.isfinite(value)
            ):
                self._mem[key] = float(value)
            else:
                dropped += 1
        if dropped:
            print(
                f"warning: sim cache {self._path}: dropped {dropped} "
                "non-numeric entr(y/ies)",
                file=sys.stderr,
            )

    def get_or_compute(self, key: str, fn: Callable[[], float]) -> float:
        with self._lock:
            if key in self._mem:
                return self._mem[key]
        value = float(fn())
        with self._lock:
            self._mem[key] = value
            self._flush()
        return value

    def _flush(self) -> None:
        """Atomic write: unique temp file + rename, never a torn cache.

        The temp name must be unique per writer — a fixed ``.tmp``
        sibling lets two processes interleave write/replace and publish
        a half-written file.
        """
        if self._path is None:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._path.parent),
            prefix=f".{self._path.name}-",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(self._mem, indent=0, sort_keys=True))
            os.replace(tmp, self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            if self._path is not None and self._path.exists():
                self._path.unlink()


_DEFAULT: Optional[SimCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> SimCache:
    """Process-wide cache persisted under the working tree."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            root = Path(os.environ.get("REPRO_CACHE_DIR", ".sim_cache"))
            _DEFAULT = SimCache(root / "results.json")
        return _DEFAULT
