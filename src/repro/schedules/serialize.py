"""Schedule serialization: compute once, save, replay forever.

Section 4.5's amortization argument assumes the schedule outlives the
process that computed it.  These helpers give schedules a stable JSON
form so an inspector can persist its plan (alongside, e.g., a mesh
partition) and later runs can replay it without re-scheduling:

* :func:`schedule_to_json` / :func:`schedule_from_json` — strings,
* :func:`save_schedule` / :func:`load_schedule` — files.

The format is versioned and validated on load; transfers keep their
pack/unpack byte charges, so store-and-forward schedules (REX)
round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .schedule import Schedule, ScheduleError, Step, Transfer

__all__ = [
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]

_FORMAT = "repro-schedule"
_VERSION = 1


def schedule_to_json(schedule: Schedule) -> str:
    """Stable JSON encoding of a schedule."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "name": schedule.name,
        "nprocs": schedule.nprocs,
        "exchange_order": schedule.exchange_order,
        "steps": [
            [
                [t.src, t.dst, t.nbytes, t.pack_bytes, t.unpack_bytes]
                for t in step
            ]
            for step in schedule.steps
        ],
    }
    return json.dumps(doc, separators=(",", ":"))


def schedule_from_json(text: str) -> Schedule:
    """Decode a schedule; raises :class:`ScheduleError` on bad input."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise ScheduleError("not a serialized schedule")
    if doc.get("version") != _VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {doc.get('version')!r}"
        )
    try:
        steps = tuple(
            Step(
                tuple(
                    Transfer(
                        src=int(src),
                        dst=int(dst),
                        nbytes=int(nbytes),
                        pack_bytes=int(pack),
                        unpack_bytes=int(unpack),
                    )
                    for src, dst, nbytes, pack, unpack in step
                )
            )
            for step in doc["steps"]
        )
        return Schedule(
            nprocs=int(doc["nprocs"]),
            steps=steps,
            name=str(doc["name"]),
            exchange_order=str(doc["exchange_order"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from exc


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> Path:
    """Write the schedule to ``path`` (JSON); returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(schedule_to_json(schedule))
    return p


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_json(Path(path).read_text())
