"""Optimal-step scheduling by bipartite edge coloring (extension).

The paper's schedulers are heuristics; scheduling an irregular pattern
with each processor limited to one send and one receive per step is
exactly *edge coloring* of the bipartite multigraph senders x receivers.
König's theorem gives the exact optimum: the chromatic index equals the
maximum degree, i.e. ::

    min steps = max(max messages sent by any processor,
                    max messages received by any processor)

This module implements the classical alternating-path algorithm (the
constructive proof of König's theorem) and exposes the result as an
ordinary :class:`Schedule`, giving the repository a provably
step-optimal baseline to measure GS/PS/BS against — the
``bench_ablation_greedy`` benchmark quantifies how close the paper's
greedy heuristic gets.

Note that step-optimal is not always time-optimal on a real machine:
the coloring ignores message sizes and network locality, which is
precisely the gap the ablation exposes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .pattern import CommPattern
from .schedule import LOWER_RECV_FIRST, Schedule, Step, Transfer

__all__ = ["coloring_schedule", "optimal_step_count"]


def optimal_step_count(pattern: CommPattern) -> int:
    """König bound: the exact minimum number of steps for ``pattern``."""
    m = pattern.matrix
    out_deg = int((m > 0).sum(axis=1).max(initial=0))
    in_deg = int((m > 0).sum(axis=0).max(initial=0))
    return max(out_deg, in_deg)


def coloring_schedule(pattern: CommPattern, name: str = "OPT") -> Schedule:
    """Schedule ``pattern`` in the provably minimal number of steps.

    Classical bipartite edge coloring: insert edges one at a time; when
    sender and receiver have no common free color, flip an alternating
    (Kempe) chain between the two candidate colors to make one.
    """
    n = pattern.nprocs
    ncolors = optimal_step_count(pattern)
    if ncolors == 0:
        return Schedule(nprocs=n, steps=(), name=name)

    # sender_color[u][c] = v if edge u->v has color c (and mirror).
    sender_color: List[Dict[int, int]] = [dict() for _ in range(n)]
    recv_color: List[Dict[int, int]] = [dict() for _ in range(n)]

    def free_color(used: Dict[int, int]) -> int:
        for c in range(ncolors):
            if c not in used:
                return c
        raise AssertionError("degree exceeded the König bound")  # pragma: no cover

    for src, dst, _nbytes in pattern.operations():
        cu = free_color(sender_color[src])
        cv = free_color(recv_color[dst])
        if cu == cv:
            sender_color[src][cu] = dst
            recv_color[dst][cu] = src
            continue
        # Kempe chain: walk the alternating (cu, cv) path starting from
        # dst's cu-edge, collecting the edges on it; then recolor them
        # all at once (cu <-> cv).  Afterwards cu is free at dst, and cu
        # is still free at src (the chain cannot reach src via a cu-edge
        # because src has none), so src->dst takes cu.
        chain: List[Tuple[int, int, int]] = []  # (sender, receiver, color)
        node, node_is_recv, color = dst, True, cu
        while True:
            if node_is_recv:
                partner = recv_color[node].get(color)
                if partner is None:
                    break
                chain.append((partner, node, color))
            else:
                partner = sender_color[node].get(color)
                if partner is None:
                    break
                chain.append((node, partner, color))
            node = partner
            node_is_recv = not node_is_recv
            color = cv if color == cu else cu
        for s, r, col in chain:
            del sender_color[s][col]
            del recv_color[r][col]
        for s, r, col in chain:
            other = cv if col == cu else cu
            sender_color[s][other] = r
            recv_color[r][other] = s
        sender_color[src][cu] = dst
        recv_color[dst][cu] = src

    steps: List[Step] = []
    for c in range(ncolors):
        transfers = tuple(
            Transfer(src, dst, pattern[src, dst])
            for src in range(n)
            for col, dst in sender_color[src].items()
            if col == c
        )
        if transfers:
            steps.append(Step(transfers))
    return Schedule(
        nprocs=n,
        steps=tuple(steps),
        name=name,
        exchange_order=LOWER_RECV_FIRST,
    )
