"""Balanced Exchange (BEX) and Balanced Scheduling (BS).

The paper's contribution (Section 3.4, Figure 4).  PEX's XOR pairing
has a locality pathology on the CM-5 fat tree: in the first steps every
processor exchanges *inside* its cluster of four, and in later step
blocks every processor simultaneously exchanges with a *remote* cluster,
so the root links see bursts of contention.  BEX applies the pairwise
algorithm to *virtual* processor numbers, offset by one from the
physical numbers::

    virtual = (physical + 1) mod N
    partner(physical, j) = ((virtual XOR j) - 1) mod N

The rotation staggers the pairing relative to the physical cluster
boundaries, so each step mixes intra-cluster ("local") and inter-cluster
("global") exchanges: the 3N/4 * N/2 global exchange pairs are spread
across all N-1 steps instead of saturating 3N/4 of the steps
(Section 3.4's accounting).  :mod:`repro.schedules.metrics` measures
exactly this redistribution; the ablation benchmark shows it is where
BEX's advantage comes from.

Balanced Scheduling (Section 4.3) is the same pairing on an irregular
pattern.
"""

from __future__ import annotations

from .pattern import CommPattern
from .schedule import Schedule
from .pex import pairing_schedule, uniform_pairing_schedule

__all__ = ["balanced_schedule", "balanced_exchange", "bex_partner"]


def bex_partner(rank: int, j: int, nprocs: int) -> int:
    """Figure 4's partner computation (virtual-renumbered XOR pairing)."""
    virtual = (rank + 1) % nprocs
    node = (virtual ^ j) - 1
    if node == -1:
        node = nprocs - 1
    return node


def balanced_schedule(pattern: CommPattern, name: str = "BS") -> Schedule:
    """Balanced Scheduling of an irregular pattern (paper Table 9)."""
    n = pattern.nprocs
    return pairing_schedule(pattern, lambda r, j: bex_partner(r, j, n), name)


def balanced_exchange(nprocs: int, nbytes: int) -> Schedule:
    """Balanced Exchange: complete exchange in N-1 steps (Table 4)."""
    return uniform_pairing_schedule(
        nprocs, nbytes, lambda r, j: bex_partner(r, j, nprocs), "BEX"
    )
