"""Schedule metrics: step counts, locality balance, root traffic.

These quantify the *mechanism* claims in the paper:

* Section 3.4: PEX concentrates its global (inter-cluster) exchanges —
  on N >= 16 processors, 3N/4 of its N-1 steps are entirely global while
  N/4 are entirely local; BEX spreads the same 3N/4 * N/2 global
  exchange pairs evenly across all N-1 steps.
* Section 4.4: GS finishes sparse patterns in fewer steps than the fixed
  pairings, but can exceed N-1 steps at high density.

The ablation benchmarks report these numbers alongside the measured
times so the causal story is visible, not just the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..machine.params import MachineConfig
from .schedule import Schedule

__all__ = ["StepLocality", "ScheduleMetrics", "analyze"]


@dataclass(frozen=True)
class StepLocality:
    """Locality breakdown of one step."""

    step: int
    n_transfers: int
    n_local: int  # stays inside a 4-node cluster
    n_global: int  # crosses cluster boundary
    bytes_local: int
    bytes_global: int
    #: Bytes whose route crosses the partition's top fat-tree level.
    bytes_through_root: int


@dataclass(frozen=True)
class ScheduleMetrics:
    """Whole-schedule summary."""

    name: str
    nprocs: int
    nsteps: int
    n_messages: int
    total_bytes: int
    per_step: List[StepLocality]
    #: Participant sets per step (senders + receivers), for idle metrics.
    #: Defaults to empty (no participant data: the idle metrics report
    #: zero idle slots) rather than ``None``, which made ``idle_slots``
    #: and ``utilization`` crash with a ``TypeError`` when the dataclass
    #: was constructed directly.
    _participants: Sequence[frozenset] = ()

    @property
    def global_counts(self) -> np.ndarray:
        return np.array([s.n_global for s in self.per_step])

    @property
    def root_bytes_per_step(self) -> np.ndarray:
        return np.array([s.bytes_through_root for s in self.per_step])

    @property
    def global_balance(self) -> float:
        """Coefficient of variation of per-step global-transfer counts.

        0 means perfectly even global traffic (BEX's goal); PEX's
        all-local/all-global step blocks give a large value.
        """
        counts = self.global_counts.astype(float)
        mean = counts.mean() if len(counts) else 0.0
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)

    @property
    def peak_root_bytes(self) -> int:
        arr = self.root_bytes_per_step
        return int(arr.max()) if len(arr) else 0

    @property
    def n_global_total(self) -> int:
        return int(self.global_counts.sum())

    @property
    def idle_slots(self) -> int:
        """Processor-steps spent idle (Section 4: a processor with no
        entry in the step's pairing "remains idle in that step").

        LS/PS/BS leave slots empty whenever the fixed pairing assigns a
        pair nothing to say; GS's whole point is packing these slots.
        """
        return sum(self.nprocs - len(s_participants) for s_participants in self._participants)

    @property
    def utilization(self) -> float:
        """Fraction of processor-steps that carry communication."""
        total = self.nprocs * self.nsteps
        return 1.0 - self.idle_slots / total if total else 1.0


def analyze(schedule: Schedule, config: MachineConfig) -> ScheduleMetrics:
    """Compute locality metrics of ``schedule`` on ``config``'s fat tree."""
    if schedule.nprocs != config.nprocs:
        raise ValueError(
            f"schedule is for {schedule.nprocs} procs, machine has "
            f"{config.nprocs}"
        )
    top = config.levels
    per_step: List[StepLocality] = []
    participants: List[frozenset] = []
    for idx, step in enumerate(schedule.steps):
        participants.append(frozenset(step.participants))
        n_local = n_global = 0
        b_local = b_global = b_root = 0
        for t in step:
            level = config.route_level(t.src, t.dst)
            if level == 1:
                n_local += 1
                b_local += t.nbytes
            else:
                n_global += 1
                b_global += t.nbytes
            if level >= top and top > 1:
                b_root += t.nbytes
        per_step.append(
            StepLocality(
                step=idx + 1,
                n_transfers=len(step),
                n_local=n_local,
                n_global=n_global,
                bytes_local=b_local,
                bytes_global=b_global,
                bytes_through_root=b_root,
            )
        )
    return ScheduleMetrics(
        name=schedule.name,
        nprocs=schedule.nprocs,
        nsteps=schedule.nsteps,
        n_messages=schedule.n_messages,
        total_bytes=schedule.total_bytes,
        per_step=per_step,
        _participants=participants,
    )
