"""Execute a schedule on the simulated CM-5 and measure its time.

The executor translates a :class:`Schedule` into one rank program per
node — reproducing the papers' code structure, including the
deadlock-free orderings of Figures 2 and 3 — and runs them on the
discrete-event engine.  No global barrier separates steps (the CM-5
programs had none): step boundaries emerge from the blocking synchronous
sends, so a lightly-loaded processor can run ahead, exactly as on the
real machine.

Ordering rules inside one step, per rank:

* exchange with a single partner: the schedule's ``exchange_order``
  (PEX/BEX/irregular: lower rank receives first, Figure 2; REX: lower
  rank packs and sends first, Figure 3);
* mixed single send + single receive with *different* partners (greedy
  steps): receive first iff the receive's source has a lower rank —
  provably deadlock-free for the degree-<=1 step graphs GS emits (every
  directed cycle contains both a send-first and a receive-first node,
  so some rendezvous always completes);
* receive-only (the linear family's serialized steps): post receives in
  ascending source order, one at a time.

Pack/unpack bytes on a transfer are charged as local memcpy around the
wire operation (REX's store-and-forward reshuffle).

All sends go through :meth:`Comm.reliable_send` — free on a healthy
machine, and under a fault plan with message drops every schedule still
completes via timeout/retry-with-backoff (the retries are visible in the
trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..cmmd.api import Comm
from ..cmmd.program import run_spmd
from ..faults.plan import FaultPlan
from ..machine.params import MachineConfig
from ..sim.engine import SimResult
from ..sim.process import RankProgram
from .schedule import LOWER_SEND_FIRST, Schedule, Transfer

__all__ = [
    "ExecutionResult",
    "execute_schedule",
    "schedule_program",
    "step_actions",
]


@dataclass(frozen=True)
class ExecutionResult:
    """Timing of one schedule execution."""

    schedule_name: str
    nprocs: int
    time: float
    sim: SimResult

    @property
    def time_ms(self) -> float:
        return self.time * 1e3

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({self.schedule_name}, nprocs={self.nprocs}, "
            f"time={self.time_ms:.3f} ms)"
        )


def step_actions(
    rank: int,
    sends: List[Transfer],
    recvs: List[Transfer],
    exchange_order: str,
) -> List[tuple]:
    """Deadlock-free ``("send"|"recv", transfer)`` order for one rank's step.

    This is the ordering core of the executor (the rules in the module
    docstring), shared with the adaptive executor so a re-sequenced run
    keeps the same intra-step deadlock-freedom arguments.  A "send"
    action implies the pack memcpy before the wire op; a "recv" action
    implies the unpack memcpy after it.
    """
    if len(sends) == 1 and len(recvs) == 1 and sends[0].dst == recvs[0].src:
        out, inc = sends[0], recvs[0]
        partner = out.dst
        # Figure 3 (LOWER_SEND_FIRST): lower rank sends first;
        # Figure 2 (LOWER_RECV_FIRST): lower rank receives first.
        send_first = (rank < partner) == (exchange_order == LOWER_SEND_FIRST)
        if send_first:
            return [("send", out), ("recv", inc)]
        return [("recv", inc), ("send", out)]
    if sends:
        # Mixed partners (greedy): receive-before-send iff the source
        # outranks us downward; see module docstring.
        early = sorted((r for r in recvs if r.src < rank), key=lambda t: t.src)
        late = sorted((r for r in recvs if r.src > rank), key=lambda t: t.src)
        return (
            [("recv", t) for t in early]
            + [("send", t) for t in sorted(sends, key=lambda t: t.dst)]
            + [("recv", t) for t in late]
        )
    # Linear-family step: the receiver drains sources in order.
    return [("recv", t) for t in sorted(recvs, key=lambda t: t.src)]


def _emit_actions(
    comm: Comm,
    actions: List[tuple],
    tag: int,
    outbox: Optional[Dict[int, Any]],
    inbox: Optional[Dict[int, Any]],
) -> Iterator[object]:
    """Yield the requests realizing one step's action list."""
    for kind, t in actions:
        if kind == "send":
            if t.pack_bytes:
                yield comm.memcpy(t.pack_bytes)
            payload = outbox.get(t.dst) if outbox is not None else None
            yield from comm.reliable_send(t.dst, t.nbytes, payload, tag=tag)
        else:
            got = yield comm.recv(t.src, tag=tag)
            if t.unpack_bytes:
                yield comm.memcpy(t.unpack_bytes)
            if inbox is not None:
                inbox[t.src] = got


def schedule_program(
    comm: Comm,
    schedule: Schedule,
    outbox: Optional[Dict[int, Any]] = None,
    inbox: Optional[Dict[int, Any]] = None,
) -> RankProgram:
    """The rank program executing ``schedule`` from ``comm.rank``'s seat.

    ``outbox`` maps destination rank to the payload object attached to
    the corresponding send; received payloads are stored into ``inbox``
    keyed by source rank.  Both default to pure timing (no data moves).
    Store-and-forward schedules (REX) must not use payload mode — their
    wire transfers carry staged aggregates, not per-pair payloads.
    """
    rank = comm.rank
    for step_idx in range(schedule.nsteps):
        sends, recvs = schedule.rank_ops(rank, step_idx)
        if not sends and not recvs:
            continue
        actions = step_actions(rank, sends, recvs, schedule.exchange_order)
        yield from _emit_actions(comm, actions, step_idx, outbox, inbox)


def execute_schedule(
    schedule: Schedule,
    config: MachineConfig,
    trace: bool = False,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    max_trace_records: Optional[int] = None,
    tracer: Optional[Any] = None,
) -> ExecutionResult:
    """Run ``schedule`` on the machine model and return its makespan.

    ``faults`` injects a seeded :class:`~repro.faults.FaultPlan`
    (degraded links, stragglers, message delays/drops); dropped
    messages are repaired transparently by the retry layer and show up
    as retry records in the trace.  ``max_trace_records`` caps retained
    trace lists on large fault sweeps.  ``tracer`` attaches a
    :class:`repro.obs.Tracer` (rank-op timelines, link utilization and
    an ``execute/fluid`` wall span) without perturbing timings.
    """
    if schedule.nprocs != config.nprocs:
        raise ValueError(
            f"schedule is for {schedule.nprocs} procs, machine has "
            f"{config.nprocs}"
        )
    from .. import obs

    effective = tracer if tracer is not None else obs.current()
    with obs.span(f"execute/{schedule.name}", category="execute"):
        sim = run_spmd(
            config,
            schedule_program,
            schedule,
            trace=trace,
            seed=seed,
            faults=faults,
            max_trace_records=max_trace_records,
            tracer=effective,
        )
    if effective is not None:
        effective.meta["algorithm"] = schedule.name
    return ExecutionResult(
        schedule_name=schedule.name,
        nprocs=config.nprocs,
        time=sim.makespan,
        sim=sim,
    )
