"""Greedy Scheduling (GS) of irregular patterns.

Paper Section 4.4 (Figure 12).  Instead of the fixed XOR pairings of
PS/BS, each step is assembled greedily: processors are visited in rank
order, and each selects the lowest-numbered destination it still owes a
message to that can accept one this step.  If the reverse message is
also pending, the pair *must* perform an exchange (requiring both
processors' send and receive slots); otherwise a one-directional send
only consumes the sender's send slot and the destination's receive slot,
so a processor can send to one neighbour and receive from another in the
same step (Table 10's step 3: ``0 -> 5`` together with ``7 -> 0``).

For a complete exchange this reduces exactly to pairwise exchange; for
sparse patterns it finishes in fewer steps than PS/BS — the mechanism
behind GS winning below ~50% density — but at high density its unaligned
choices can exceed N-1 steps, which is where BS takes over (Table 11).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .. import obs
from .pattern import CommPattern
from .schedule import LOWER_RECV_FIRST, Schedule, ScheduleError, Step, Transfer

__all__ = ["greedy_schedule"]

#: Safety bound: a pattern with M messages needs at most M steps.
_MAX_STEP_FACTOR = 1


def greedy_schedule(
    pattern: CommPattern, name: str = "GS", order: str = "lowest"
) -> Schedule:
    """Greedy Scheduling of an irregular pattern (paper Table 10).

    ``order`` selects the destination preference when a processor picks
    its next partner:

    * ``"lowest"`` — the paper's rule (lowest-numbered pending
      destination; reproduces Table 10 exactly);
    * ``"largest_first"`` — an extension: prefer the destination owed
      the most bytes, so big messages start early and small ones fill
      the tail (classic LPT-style list scheduling).  Coverage and step
      bounds are identical; measured gains are small in practice
      because a node's makespan share is its *total* traffic, which no
      ordering changes — the option exists to make that negative result
      reproducible.
    """
    if order not in ("lowest", "largest_first"):
        raise ValueError(f"unknown order {order!r}")
    with obs.span(f"build/{name}", category="build", nprocs=pattern.nprocs):
        return _greedy_build(pattern, name, order)


def _greedy_build(pattern: CommPattern, name: str, order: str) -> Schedule:
    n = pattern.nprocs

    def dest_list(i: int) -> List[int]:
        sends = pattern.sends_of(i)
        if order == "largest_first":
            # Stable: ties fall back to the paper's lowest-first rule.
            sends = sorted(sends, key=lambda dn: (-dn[1], dn[0]))
        return [j for j, _ in sends]

    remaining: Dict[int, List[int]] = {i: dest_list(i) for i in range(n)}
    pending: Set[Tuple[int, int]] = {
        (i, j) for i in range(n) for j in remaining[i]
    }
    steps: List[Step] = []
    max_steps = max(1, len(pending)) * _MAX_STEP_FACTOR + n

    while pending:
        if len(steps) > max_steps:  # pragma: no cover - progress is proven
            raise ScheduleError(f"{name}: failed to drain pattern")
        send_free = [True] * n
        recv_free = [True] * n
        transfers: List[Transfer] = []
        for i in range(n):
            if not send_free[i]:
                continue
            for j in remaining[i]:
                if (j, i) in pending:
                    # Reverse message also pending: must be an exchange.
                    if send_free[j] and recv_free[i] and recv_free[j]:
                        transfers.append(Transfer(i, j, pattern[i, j]))
                        transfers.append(Transfer(j, i, pattern[j, i]))
                        send_free[i] = send_free[j] = False
                        recv_free[i] = recv_free[j] = False
                        break
                elif recv_free[j]:
                    transfers.append(Transfer(i, j, pattern[i, j]))
                    send_free[i] = False
                    recv_free[j] = False
                    break
        if not transfers:  # pragma: no cover - first pick always succeeds
            raise ScheduleError(f"{name}: no progress with {len(pending)} pending")
        for t in transfers:
            pending.discard((t.src, t.dst))
            remaining[t.src].remove(t.dst)
        steps.append(Step(tuple(transfers)))

    return Schedule(
        nprocs=n,
        steps=tuple(steps),
        name=name,
        exchange_order=LOWER_RECV_FIRST,
    )
