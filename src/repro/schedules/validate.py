"""Static schedule linter: machine-checkable validity before pricing.

The repo prices schedules with three independent backends (the analytic
estimator, the fluid discrete-event simulator, and the packet-level
validator).  All three *assume* a schedule is well-formed; this module
checks that assumption statically, so a bad generator or a hand-edited
schedule JSON fails loudly with named ranks and steps instead of
producing a confidently wrong number — the same role Träff's
checkable-schedule artifacts play for provably optimal broadcast trees.

Four families of checks:

* **structure** — in-range ranks, no self-transfers, no negative byte
  counts, at most one transfer per directed ``(src, dst)`` pair per
  step, at most one send per rank per step (multi-receive is legal: the
  linear family's defining pathology);
* **conservation** — against a :class:`CommPattern`: every pattern byte
  appears in exactly one transfer, with no duplicates, spurious
  transfers, or wrong byte counts (skipped, with a warning, for
  store-and-forward schedules whose wire transfers carry staged
  aggregates);
* **deadlock** — the executor's Figure-2/3 orderings induce, per rank,
  a sequence of blocking rendezvous operations; the linter
  abstract-executes the rendezvous matching and, on a stall, names the
  cycle in the wait-for graph (rank A waits for B waits for ... A);
* **payload mode** — REX-style store-and-forward schedules must not be
  executed in payload mode (their transfers carry staged aggregates,
  not per-pair payloads); ``payload_mode=True`` turns that into an
  error.

Use :func:`lint_schedule` for a report, :func:`validate_schedule` to
raise :class:`LintError` on the first failing report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .pattern import CommPattern
from .schedule import LOWER_SEND_FIRST, Schedule

__all__ = [
    "LintIssue",
    "LintReport",
    "LintError",
    "lint_schedule",
    "validate_schedule",
]

#: Issue severities: an ``error`` fails validation, a ``warning`` does not.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintIssue:
    """One finding, with a stable machine-readable code."""

    code: str
    severity: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


class LintError(ValueError):
    """A schedule failed validation; carries the full report."""

    def __init__(self, report: "LintReport"):
        self.report = report
        errors = report.errors
        shown = "; ".join(i.message for i in errors[:3])
        more = f" (and {len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"{report.schedule_name}: {len(errors)} lint error(s): "
            f"{shown}{more}"
        )


@dataclass
class LintReport:
    """Outcome of linting one schedule."""

    schedule_name: str
    nprocs: int
    nsteps: int
    checks: List[str] = field(default_factory=list)
    issues: List[LintIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == ERROR]

    @property
    def warnings(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise LintError(self)

    def render(self) -> str:
        """One-line verdict plus one line per issue."""
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"{verdict} {self.schedule_name} ({self.nprocs} procs, "
            f"{self.nsteps} steps; checks: {', '.join(self.checks)})"
        ]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def _check_structure(schedule: Schedule, issues: List[LintIssue]) -> None:
    n = schedule.nprocs
    for step_idx, step in enumerate(schedule.steps):
        seen_pairs: Set[Tuple[int, int]] = set()
        send_count: Dict[int, int] = {}
        for t in step:
            where = f"step {step_idx + 1}"
            if not (0 <= t.src < n and 0 <= t.dst < n):
                issues.append(
                    LintIssue(
                        "structure.rank-range",
                        ERROR,
                        f"{where}: transfer {t.src}->{t.dst} outside "
                        f"ranks 0..{n - 1}",
                    )
                )
            if t.src == t.dst:
                issues.append(
                    LintIssue(
                        "structure.self-transfer",
                        ERROR,
                        f"{where}: rank {t.src} sends to itself",
                    )
                )
            if t.nbytes < 0 or t.pack_bytes < 0 or t.unpack_bytes < 0:
                issues.append(
                    LintIssue(
                        "structure.negative-bytes",
                        ERROR,
                        f"{where}: transfer {t.src}->{t.dst} has a "
                        f"negative byte count",
                    )
                )
            key = (t.src, t.dst)
            if key in seen_pairs:
                issues.append(
                    LintIssue(
                        "structure.duplicate-pair",
                        ERROR,
                        f"{where}: duplicate transfer {t.src}->{t.dst}",
                    )
                )
            seen_pairs.add(key)
            send_count[t.src] = send_count.get(t.src, 0) + 1
        for rank, c in send_count.items():
            if c > 1:
                issues.append(
                    LintIssue(
                        "structure.multi-send",
                        ERROR,
                        f"step {step_idx + 1}: rank {rank} sends {c} "
                        f"messages (one network interface)",
                    )
                )


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------
def _is_staged(schedule: Schedule) -> bool:
    """True for store-and-forward schedules (REX-style staging)."""
    return any(
        t.pack_bytes or t.unpack_bytes for _, t in schedule.all_transfers()
    )


def _check_conservation(
    schedule: Schedule, pattern: CommPattern, issues: List[LintIssue]
) -> None:
    """Every pattern byte in exactly one transfer, nothing extra."""
    if schedule.nprocs != pattern.nprocs:
        issues.append(
            LintIssue(
                "conservation.size-mismatch",
                ERROR,
                f"schedule is for {schedule.nprocs} procs, pattern for "
                f"{pattern.nprocs}",
            )
        )
        return
    seen: Dict[Tuple[int, int], int] = {}
    for step_idx, t in schedule.all_transfers():
        key = (t.src, t.dst)
        in_range = 0 <= t.src < pattern.nprocs and 0 <= t.dst < pattern.nprocs
        if t.nbytes == 0 and in_range and int(pattern[key]) == 0:
            # Zero-byte sync message (the Figure 5 axis includes size 0):
            # carries no pattern bytes, so conservation has no claim on it.
            continue
        if key in seen:
            issues.append(
                LintIssue(
                    "conservation.duplicate",
                    ERROR,
                    f"transfer {t.src}->{t.dst} appears in steps "
                    f"{seen[key] + 1} and {step_idx + 1}: bytes would be "
                    f"delivered twice",
                )
            )
            continue
        seen[key] = step_idx
        if not (0 <= t.src < pattern.nprocs and 0 <= t.dst < pattern.nprocs):
            continue  # already reported by the structure check
        required = int(pattern[t.src, t.dst])
        if required == 0:
            issues.append(
                LintIssue(
                    "conservation.spurious",
                    ERROR,
                    f"step {step_idx + 1}: transfer {t.src}->{t.dst} "
                    f"carries {t.nbytes}B but the pattern requires none",
                )
            )
        elif t.nbytes != required:
            issues.append(
                LintIssue(
                    "conservation.byte-count",
                    ERROR,
                    f"step {step_idx + 1}: transfer {t.src}->{t.dst} "
                    f"carries {t.nbytes}B, pattern requires {required}B",
                )
            )
    for src, dst, nbytes in pattern.operations():
        if (src, dst) not in seen:
            issues.append(
                LintIssue(
                    "conservation.missing",
                    ERROR,
                    f"pattern bytes lost: no transfer {src}->{dst} "
                    f"({nbytes}B) in any step",
                )
            )


# ----------------------------------------------------------------------
# Deadlock
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Op:
    """One blocking rendezvous operation from a rank's seat."""

    kind: str  # "send" | "recv"
    partner: int
    step: int  # 0-based step index; doubles as the message tag

    def describe(self) -> str:
        arrow = "->" if self.kind == "send" else "<-"
        return f"{self.kind}{arrow}{self.partner} (step {self.step + 1})"


def _rank_op_sequence(schedule: Schedule, rank: int) -> List[_Op]:
    """The rank's blocking ops in program order.

    Mirrors :func:`repro.schedules.executor.schedule_program` exactly:
    paired exchanges follow the schedule's ``exchange_order`` (Figure 2
    or 3), mixed-partner steps receive-from-lower-ranks first, and
    receive-only steps drain sources in ascending order.  Memcpy and
    compute requests never block on a partner, so they are irrelevant
    to deadlock and omitted.
    """
    ops: List[_Op] = []
    for step_idx in range(schedule.nsteps):
        sends, recvs = schedule.rank_ops(rank, step_idx)
        if not sends and not recvs:
            continue
        if len(sends) == 1 and len(recvs) == 1 and sends[0].dst == recvs[0].src:
            partner = sends[0].dst
            if schedule.exchange_order == LOWER_SEND_FIRST:
                first = "send" if rank < partner else "recv"
            else:
                first = "recv" if rank < partner else "send"
            second = "recv" if first == "send" else "send"
            ops.append(_Op(first, partner, step_idx))
            ops.append(_Op(second, partner, step_idx))
            continue
        if sends:
            early = sorted(t.src for t in recvs if t.src < rank)
            late = sorted(t.src for t in recvs if t.src > rank)
            ops.extend(_Op("recv", src, step_idx) for src in early)
            ops.extend(
                _Op("send", t.dst, step_idx)
                for t in sorted(sends, key=lambda t: t.dst)
            )
            ops.extend(_Op("recv", src, step_idx) for src in late)
        else:
            for src in sorted(t.src for t in recvs):
                ops.append(_Op("recv", src, step_idx))
    return ops


def _matches(a: _Op, a_rank: int, b: Optional[_Op], b_rank: int) -> bool:
    """Do two head ops form a completable rendezvous?"""
    if b is None:
        return False
    return (
        {a.kind, b.kind} == {"send", "recv"}
        and a.partner == b_rank
        and b.partner == a_rank
        and a.step == b.step
    )


def _check_deadlock(schedule: Schedule, issues: List[LintIssue]) -> None:
    """Abstract-execute the rendezvous matching; name any wait cycle.

    Each rank's head op waits for its partner's matching op (synchronous
    CMMD semantics: a send blocks until the receive is posted and vice
    versa).  Matching pairs retire together; when no head matches, the
    remaining ranks form a wait-for graph in which every stuck rank has
    exactly one outgoing edge, so a stall is either a cycle (classic
    rendezvous deadlock) or a dangling wait on a rank that already
    finished (an unmatched operation).
    """
    seqs = {r: _rank_op_sequence(schedule, r) for r in range(schedule.nprocs)}
    pos = {r: 0 for r in seqs}

    def head(r: int) -> Optional[_Op]:
        s = seqs.get(r)
        if s is None:
            return None
        return s[pos[r]] if pos[r] < len(s) else None

    # Work-list matching: a rank is re-examined when it advances or when
    # a rank it might be waiting on advances.
    waiting_on: Dict[int, Set[int]] = {r: set() for r in seqs}
    queue: List[int] = list(seqs)
    queued: Set[int] = set(queue)
    while queue:
        r = queue.pop()
        queued.discard(r)
        op = head(r)
        if op is None:
            continue
        mate = head(op.partner)
        if _matches(op, r, mate, op.partner):
            p = op.partner
            pos[r] += 1
            pos[p] += 1
            for nxt in (r, p):
                wakeups = waiting_on.get(nxt, set())
                wakeups.add(nxt)
                for w in wakeups:
                    if w not in queued:
                        queue.append(w)
                        queued.add(w)
                waiting_on[nxt] = set()
        elif 0 <= op.partner < schedule.nprocs:
            waiting_on.setdefault(op.partner, set()).add(r)

    stuck = {r: h for r in seqs if (h := head(r)) is not None}
    if not stuck:
        return

    # Follow the single outgoing wait-for edge of each stuck rank until a
    # rank repeats (a cycle) — or, failing that, report dangling waits.
    cycle: Optional[List[int]] = None
    for start in sorted(stuck):
        order: Dict[int, int] = {}
        chain: List[int] = []
        r = start
        while r in stuck and r not in order:
            order[r] = len(chain)
            chain.append(r)
            r = stuck[r].partner
        if r in order:
            cycle = chain[order[r]:]
            break
    if cycle is not None:
        described = ", ".join(f"rank {r} {stuck[r].describe()}" for r in cycle)
        issues.append(
            LintIssue(
                "deadlock.cycle",
                ERROR,
                f"cyclic rendezvous wait-for graph among ranks "
                f"{cycle}: {described}",
            )
        )
    else:
        for r in sorted(stuck):
            if stuck[r].partner not in stuck:
                issues.append(
                    LintIssue(
                        "deadlock.unmatched",
                        ERROR,
                        f"rank {r} blocks forever on "
                        f"{stuck[r].describe()}: rank {stuck[r].partner} "
                        f"posts no matching operation",
                    )
                )


# ----------------------------------------------------------------------
# Payload mode
# ----------------------------------------------------------------------
def _check_payload_mode(
    schedule: Schedule, payload_mode: bool, issues: List[LintIssue]
) -> None:
    if not _is_staged(schedule):
        return
    staged = sum(
        1 for _, t in schedule.all_transfers() if t.pack_bytes or t.unpack_bytes
    )
    if payload_mode:
        issues.append(
            LintIssue(
                "payload.staged",
                ERROR,
                f"store-and-forward schedule used in payload mode: "
                f"{staged} transfer(s) carry staged aggregates "
                f"(pack/unpack bytes), not per-pair payloads",
            )
        )
    else:
        issues.append(
            LintIssue(
                "payload.staged",
                WARNING,
                f"store-and-forward schedule ({staged} staged "
                f"transfer(s)); do not execute in payload mode",
            )
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_schedule(
    schedule: Schedule,
    pattern: Optional[CommPattern] = None,
    payload_mode: bool = False,
) -> LintReport:
    """Run every applicable check; return the full report.

    ``pattern`` enables the byte-conservation check (skipped with a
    warning for store-and-forward schedules, whose wire bytes are staged
    aggregates validated by algorithm-specific routing checks instead).
    ``payload_mode`` marks the intent to execute the schedule with
    per-pair payload delivery, which store-and-forward schedules cannot
    honour.
    """
    report = LintReport(
        schedule_name=schedule.name,
        nprocs=schedule.nprocs,
        nsteps=schedule.nsteps,
    )
    report.checks.append("structure")
    _check_structure(schedule, report.issues)
    if pattern is not None:
        if _is_staged(schedule):
            report.checks.append("conservation(skipped)")
            report.issues.append(
                LintIssue(
                    "conservation.staged-skip",
                    WARNING,
                    "conservation not checkable for store-and-forward "
                    "schedules; rely on block-routing verification",
                )
            )
        else:
            report.checks.append("conservation")
            _check_conservation(schedule, pattern, report.issues)
    report.checks.append("deadlock")
    _check_deadlock(schedule, report.issues)
    report.checks.append("payload")
    _check_payload_mode(schedule, payload_mode, report.issues)
    return report


def validate_schedule(
    schedule: Schedule,
    pattern: Optional[CommPattern] = None,
    payload_mode: bool = False,
) -> LintReport:
    """Lint and raise :class:`LintError` if any check failed."""
    report = lint_schedule(schedule, pattern, payload_mode)
    report.raise_if_failed()
    return report
