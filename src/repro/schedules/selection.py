"""Algorithm selection: the paper's conclusions as a decision procedure.

The paper ends with a decision rule (Section 5): use greedy scheduling
below 50% communication density, balanced above it, never linear; for
regular complete exchanges, recursive for tiny messages and
pairwise/balanced otherwise.  This module encodes that rule
(:func:`paper_rule`) and a measurement-driven alternative
(:func:`auto_schedule`) that builds every candidate schedule and picks
the one the analytic estimator (:mod:`repro.schedules.estimate`) prices
cheapest — the natural upgrade once an estimator exists.

The selection benchmark in the test suite checks the two approaches
agree in the regimes the paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..machine.params import MachineConfig
from .coloring import coloring_schedule
from .estimate import estimate_schedule_time
from .irregular import IRREGULAR_ALGORITHMS
from .pattern import CommPattern
from .schedule import Schedule, ScheduleError

__all__ = ["paper_rule", "auto_schedule", "SelectionResult"]


def paper_rule(pattern: CommPattern) -> str:
    """Section 5's rule of thumb: greedy when sparse, balanced when dense."""
    return "greedy" if pattern.density < 0.5 else "balanced"


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of an estimator-driven selection."""

    schedule: Schedule
    algorithm: str
    estimates: Dict[str, float]

    @property
    def estimated_time(self) -> float:
        return self.estimates[self.algorithm]


def auto_schedule(
    pattern: CommPattern,
    config: MachineConfig,
    include_optimal: bool = True,
    candidates: Optional[Tuple[str, ...]] = None,
) -> SelectionResult:
    """Build all candidate schedules and keep the cheapest by estimate.

    ``include_optimal`` adds the König edge-coloring schedule to the
    candidate pool (an option the paper did not have).  Estimation is
    simulation-free, so selection stays cheap enough to run at plan
    time (the inspector/executor setting of Section 4).

    Ties on the estimate break by algorithm name, so the winner never
    depends on the order the caller listed ``candidates`` in; an empty
    pool or an unknown candidate name raises :class:`ScheduleError`
    naming the valid choices.
    """
    names = candidates if candidates is not None else tuple(IRREGULAR_ALGORITHMS)
    unknown = [n for n in names if n not in IRREGULAR_ALGORITHMS]
    if unknown:
        raise ScheduleError(
            f"unknown candidate algorithm(s) {sorted(unknown)}; "
            f"choose from {sorted(IRREGULAR_ALGORITHMS)}"
        )
    built: Dict[str, Schedule] = {
        name: IRREGULAR_ALGORITHMS[name](pattern) for name in names
    }
    if include_optimal:
        built["coloring"] = coloring_schedule(pattern)
    if not built:
        raise ScheduleError(
            "empty candidate pool: candidates=() with include_optimal=False "
            "leaves auto_schedule nothing to choose from"
        )
    estimates = {
        name: estimate_schedule_time(sched, config)
        for name, sched in built.items()
    }
    best = min(estimates, key=lambda k: (estimates[k], k))
    return SelectionResult(
        schedule=built[best], algorithm=best, estimates=estimates
    )
