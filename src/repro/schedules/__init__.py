"""Communication-scheduling algorithms — the paper's core contribution.

Regular patterns (Section 3):

* :func:`linear_exchange` (LEX), :func:`pairwise_exchange` (PEX),
  :func:`recursive_exchange` (REX), :func:`balanced_exchange` (BEX) —
  complete exchange;
* :func:`linear_broadcast` (LIB), :func:`recursive_broadcast` (REB).

Irregular patterns (Section 4), driven by a :class:`CommPattern`:

* :func:`linear_schedule` (LS), :func:`pairwise_schedule` (PS),
  :func:`balanced_schedule` (BS), :func:`greedy_schedule` (GS), plus the
  :data:`IRREGULAR_ALGORITHMS` registry.

Schedules are inspected with :func:`analyze` (locality metrics),
validated with :func:`validate_structure` / :func:`check_covers_pattern`,
and priced on the machine model with :func:`execute_schedule`.
"""

from .pattern import CommPattern, paper_pattern_P
from .schedule import (
    LOWER_RECV_FIRST,
    LOWER_SEND_FIRST,
    Schedule,
    ScheduleError,
    Step,
    Transfer,
    check_covers_pattern,
    validate_structure,
)
from .lex import linear_exchange, linear_schedule
from .pex import (
    pairing_schedule,
    pairwise_exchange,
    pairwise_schedule,
    uniform_pairing_schedule,
)
from .rex import recursive_exchange, rex_partner, verify_block_routing
from .bex import balanced_exchange, balanced_schedule, bex_partner
from .broadcast import linear_broadcast, recursive_broadcast
from .greedy import greedy_schedule
from .irregular import IRREGULAR_ALGORITHMS, algorithm_names, schedule_irregular
from .coloring import coloring_schedule, optimal_step_count
from .localsearch import local_schedule
from .bound import (
    LowerBound,
    bisection_bound,
    endpoint_bound,
    lp_bound,
    makespan_lower_bound,
)
from .estimate import estimate_schedule_time, estimate_step_time
from .shift import shift_schedule
from .mesh2d import ProcessorMesh
from .repair import rank_steps, repair_schedule, step_cost_estimate
from .validate import (
    LintError,
    LintIssue,
    LintReport,
    lint_schedule,
    validate_schedule,
)
from .selection import SelectionResult, auto_schedule, paper_rule
from .serialize import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from .asynchronous import (
    linear_exchange_async_program,
    linear_exchange_sync_program,
    linear_exchange_time,
)
from .executor import ExecutionResult, execute_schedule, schedule_program
from .metrics import ScheduleMetrics, StepLocality, analyze

__all__ = [
    "CommPattern",
    "paper_pattern_P",
    "LOWER_RECV_FIRST",
    "LOWER_SEND_FIRST",
    "Schedule",
    "ScheduleError",
    "Step",
    "Transfer",
    "check_covers_pattern",
    "validate_structure",
    "linear_exchange",
    "linear_schedule",
    "pairing_schedule",
    "pairwise_exchange",
    "pairwise_schedule",
    "uniform_pairing_schedule",
    "recursive_exchange",
    "rex_partner",
    "verify_block_routing",
    "balanced_exchange",
    "balanced_schedule",
    "bex_partner",
    "linear_broadcast",
    "recursive_broadcast",
    "greedy_schedule",
    "IRREGULAR_ALGORITHMS",
    "algorithm_names",
    "schedule_irregular",
    "coloring_schedule",
    "optimal_step_count",
    "local_schedule",
    "LowerBound",
    "endpoint_bound",
    "bisection_bound",
    "lp_bound",
    "makespan_lower_bound",
    "estimate_schedule_time",
    "estimate_step_time",
    "shift_schedule",
    "ProcessorMesh",
    "SelectionResult",
    "auto_schedule",
    "paper_rule",
    "rank_steps",
    "repair_schedule",
    "step_cost_estimate",
    "LintError",
    "LintIssue",
    "LintReport",
    "lint_schedule",
    "validate_schedule",
    "load_schedule",
    "save_schedule",
    "schedule_from_json",
    "schedule_to_json",
    "linear_exchange_async_program",
    "linear_exchange_sync_program",
    "linear_exchange_time",
    "ExecutionResult",
    "execute_schedule",
    "schedule_program",
    "ScheduleMetrics",
    "StepLocality",
    "analyze",
]
