"""Synchronous vs asynchronous linear exchange (the Section 3.1 remark).

The paper: "The current version of CM-5 supports only synchronous
communication.  Since at each step all processors send messages to a
particular processor i, synchronous communication will adversely affect
the performance.  If asynchronous (or non-blocking) communication is
allowed, processors need not wait for their messages to be received in
step i in order to proceed to step i+1."

This module implements both flavours as rank programs — the synchronous
one equivalent to executing :func:`linear_exchange`, the asynchronous
one using the engine's ``Isend``/``Wait`` — so the ablation benchmark
can quantify exactly how much of LEX's pathology the missing
asynchronous mode is responsible for.  (Receivers still drain messages
one at a time; asynchrony removes the *senders'* blocking, which is why
LEX improves but does not reach PEX.)
"""

from __future__ import annotations

from typing import Optional

from ..cmmd.api import Comm
from ..cmmd.program import run_spmd
from ..machine.params import CM5Params, DEFAULT_PARAMS, MachineConfig

__all__ = [
    "linear_exchange_sync_program",
    "linear_exchange_async_program",
    "linear_exchange_time",
]


def linear_exchange_sync_program(comm: Comm, nbytes: int):
    """LEX under blocking sends: each sender stalls on every rendezvous."""
    n = comm.size
    for i in range(n):
        if comm.rank == i:
            for j in range(n):
                if j != i:
                    yield comm.recv(j, tag=i)
        else:
            yield comm.send(i, nbytes, tag=i)


def linear_exchange_async_program(comm: Comm, nbytes: int):
    """LEX under non-blocking sends: post everything, then drain.

    A sender launches its message for step *i* and immediately proceeds
    to step *i + 1*; completion of all its sends is collected at the
    end.  Receivers are unchanged (one message at a time).
    """
    n = comm.size
    handles = []
    for i in range(n):
        if comm.rank == i:
            for j in range(n):
                if j != i:
                    yield comm.recv(j, tag=i)
        else:
            handles.append((yield comm.isend(i, nbytes, tag=i)))
    for h in handles:
        yield comm.wait(h)


def linear_exchange_time(
    nprocs: int,
    nbytes: int,
    asynchronous: bool,
    params: Optional[CM5Params] = None,
    seed: int = 0,
) -> float:
    """Seconds for a complete exchange via LEX, sync or async flavour."""
    cfg = MachineConfig(nprocs, params or DEFAULT_PARAMS)
    program = (
        linear_exchange_async_program
        if asynchronous
        else linear_exchange_sync_program
    )
    return run_spmd(cfg, program, nbytes, seed=seed).makespan
