"""Degraded-mode schedule repair: re-sequence around known faults.

Schedule optimality is fragile under heterogeneous costs: a single slow
node or link turns a carefully balanced step sequence into a convoy.
:func:`repair_schedule` takes a schedule whose steps are independent
(PEX/BEX/GS-style — every pattern message appears exactly once, no
store-and-forward staging) and a :class:`~repro.faults.FaultPlan`
describing *known* degradations, and permutes the steps:

1. **Fault-heavy steps first.**  Steps whose estimated time inflates
   most under the plan (they hit the straggler hardest, or push the most
   bytes across a degraded link) are moved to the front.  Because the
   executor has no inter-step barriers, healthy ranks run ahead through
   the later, clean steps while the degraded resource works off its
   backlog — trailing the whole machine behind the straggler at the end
   of the run is what the unrepaired order does.
2. **Root-traffic rebalancing.**  Within groups of equally-impacted
   steps, steps are re-interleaved so bursts of upper-level (root)
   traffic alternate with local-heavy steps instead of arriving
   back-to-back — the same spreading argument behind BEX, applied to
   the degraded machine.

The permutation preserves every structural invariant: steps themselves
are untouched, so per-step contention-freedom, pattern coverage, and the
deadlock-free intra-step orderings all survive (the property tests in
``tests/faults/test_repair.py`` check exactly this).  Store-and-forward
schedules (REX) carry data dependencies *between* steps and cannot be
re-sequenced; they are rejected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..faults.model import FaultModel
from ..faults.plan import FaultPlan
from ..machine.fattree import fat_tree_for
from ..machine.params import MachineConfig, wire_bytes
from .schedule import Schedule, ScheduleError, Step

__all__ = ["repair_schedule", "step_cost_estimate", "rank_steps"]

#: Relative tolerance for grouping steps as "equally impacted".
_IMPACT_RTOL = 1e-9


def step_cost_estimate(
    step: Step,
    config: MachineConfig,
    model: Optional[FaultModel] = None,
) -> float:
    """Analytic time estimate of one step under an optional fault model.

    Per rank, the step costs its software overheads plus the wire time
    of its transfers at the route's level bandwidth, scaled down by the
    worst degraded link on the path; the step completes when its
    busiest rank does.  A known straggler is priced as generally slow at
    message handling — its per-byte and per-message work is stretched by
    its worst slowdown factor — which is a *planning* heuristic, not the
    simulator's timing (the simulator stretches exactly the work the
    plan names).
    """
    params = config.params
    busy = {}
    for t in step:
        level = config.route_level(t.src, t.dst)
        degrade = model.path_degradation(t.src, t.dst) if model else 1.0
        wire = wire_bytes(t.nbytes) / (params.level_bandwidth(level) * degrade)
        # A straggler stretches only the work on its own clock — the
        # software overheads and pack/unpack copies.  Wire time is the
        # network's and is priced through link degradation alone.
        send_sw = params.send_overhead + params.memcpy_time(t.pack_bytes)
        recv_sw = params.recv_overhead + params.memcpy_time(t.unpack_bytes)
        if model is not None:
            send_sw *= max(
                model.compute_slowdown(t.src), model.overhead_slowdown(t.src)
            )
            recv_sw *= max(
                model.compute_slowdown(t.dst), model.overhead_slowdown(t.dst)
            )
        busy[t.src] = busy.get(t.src, 0.0) + send_sw + wire
        busy[t.dst] = busy.get(t.dst, 0.0) + recv_sw + wire
    return max(busy.values(), default=0.0)


def _root_bytes(step: Step, config: MachineConfig) -> int:
    """Bytes the step pushes through links above the clusters of four."""
    return sum(
        t.nbytes for t in step if config.route_level(t.src, t.dst) > 1
    )


def _step_key(step: Step) -> Tuple:
    """Canonical content key of a step, independent of its position.

    All ordering tie-breaks use this key (not the step's index) so that
    the repaired order is a function of the step *multiset* only —
    which is what makes :func:`repair_schedule` idempotent.
    """
    return tuple(
        sorted(
            (t.src, t.dst, t.nbytes, t.pack_bytes, t.unpack_bytes)
            for t in step
        )
    )


def _spread(
    indices: List[int], weights: Sequence[float], keys: Sequence[Tuple]
) -> List[int]:
    """Reorder ``indices`` so heavy and light weights alternate.

    Sorts by weight descending and deals from both ends
    (heaviest, lightest, 2nd-heaviest, ...), turning a monotone run of
    root-traffic bursts into an interleave.
    """
    if len(indices) < 3:
        return indices
    ranked = sorted(indices, key=lambda i: (-weights[i], keys[i]))
    out: List[int] = []
    lo, hi = 0, len(ranked) - 1
    while lo <= hi:
        out.append(ranked[lo])
        if lo != hi:
            out.append(ranked[hi])
        lo += 1
        hi -= 1
    return out


def rank_steps(
    steps: Sequence[Step],
    config: MachineConfig,
    model: FaultModel,
) -> List[int]:
    """Indices of ``steps`` in repair order under ``model``.

    Fault-impacted steps first (largest estimated inflation over the
    healthy cost), root-heavy steps interleaved with local-heavy ones
    within equally-impacted groups.  This is the ordering core of
    :func:`repair_schedule`, exposed so the adaptive executor can
    re-rank the *remaining* steps mid-run under an inferred model.
    """
    healthy = [step_cost_estimate(s, config) for s in steps]
    degraded = [step_cost_estimate(s, config, model) for s in steps]
    impact = [d - h for d, h in zip(degraded, healthy)]
    root = [float(_root_bytes(s, config)) for s in steps]
    keys = [_step_key(s) for s in steps]

    # Heaviest fault impact first; step content breaks ties (so the
    # order depends only on the step multiset, never on input order).
    order = sorted(range(len(steps)), key=lambda i: (-impact[i], keys[i]))

    # Rebalance root traffic inside equal-impact groups.
    rebalanced: List[int] = []
    group: List[int] = []
    scale = max(max((abs(x) for x in impact), default=0.0), 1e-30)
    for idx in order:
        if group and abs(impact[group[0]] - impact[idx]) > _IMPACT_RTOL * scale:
            rebalanced.extend(_spread(group, root, keys))
            group = []
        group.append(idx)
    rebalanced.extend(_spread(group, root, keys))
    return rebalanced


def repair_schedule(
    schedule: Schedule,
    plan: FaultPlan,
    config: MachineConfig,
) -> Schedule:
    """Re-sequence ``schedule``'s steps around the faults in ``plan``.

    Returns a new schedule (name suffixed ``+repair``) whose steps are a
    permutation of the input's: fault-impacted steps move early and
    root-heavy steps are interleaved with local ones within
    equally-impacted groups.  With no straggler or link-degrade faults
    in the plan the schedule is returned unchanged.

    Raises :class:`ScheduleError` for store-and-forward schedules
    (non-zero pack/unpack bytes): their steps carry data dependencies
    and must not be permuted.
    """
    if schedule.nprocs != config.nprocs:
        raise ScheduleError(
            f"{schedule.name}: schedule is for {schedule.nprocs} procs, "
            f"machine has {config.nprocs}"
        )
    if not plan.stragglers and not plan.link_degrades:
        return schedule
    for _, t in schedule.all_transfers():
        if t.pack_bytes or t.unpack_bytes:
            raise ScheduleError(
                f"{schedule.name}: store-and-forward schedules carry "
                "inter-step data dependencies and cannot be re-sequenced"
            )

    with obs.span("build/repair", category="build", nprocs=schedule.nprocs):
        model = FaultModel(plan, fat_tree_for(config))
        rebalanced = rank_steps(schedule.steps, config, model)
        steps: Tuple[Step, ...] = tuple(schedule.steps[i] for i in rebalanced)
        name = schedule.name
        if not name.endswith("+repair"):
            name = f"{name}+repair"
        return Schedule(
            nprocs=schedule.nprocs,
            steps=steps,
            name=name,
            exchange_order=schedule.exchange_order,
        )
