"""Pairwise Exchange (PEX) and Pairwise Scheduling (PS).

Paper Section 3.2 (Figure 2): N-1 steps; in step *j* each processor
exchanges with the partner obtained by XOR-ing its rank with *j*.  The
whole pattern decomposes into disjoint pairwise exchanges, which uses
the full-duplex network well and keeps processors busy — the classic
hypercube complete-exchange schedule (Bokhari's iPSC studies).

Pairwise Scheduling (Section 4.2) uses the same pairing on an irregular
pattern: a determined pair performs an exchange, a single send, or
idles, depending on the ``Pattern`` matrix.  Deadlock freedom comes from
the paper's ordering rule: the lower-numbered processor of a pair
receives first (captured as ``exchange_order=LOWER_RECV_FIRST``).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .. import obs
from .pattern import CommPattern
from .schedule import LOWER_RECV_FIRST, Schedule, Step, Transfer

__all__ = ["pairwise_schedule", "pairwise_exchange", "pairing_schedule"]


def pairing_schedule(
    pattern: CommPattern,
    partner_fn: Callable[[int, int], int],
    name: str,
    nsteps: Optional[int] = None,
    keep_empty_steps: bool = False,
) -> Schedule:
    """Build a schedule from a per-step perfect pairing of processors.

    ``partner_fn(rank, step_j)`` must be an involution for every step
    (``partner_fn(partner_fn(r, j), j) == r``) with no fixed points.
    Both PEX and BEX (and their irregular variants) are instances — they
    differ only in the pairing function.

    Empty steps (no pair needs to communicate) are dropped unless
    ``keep_empty_steps`` — the paper counts only non-empty steps
    (Tables 8 and 9).
    """
    n = pattern.nprocs
    if n & (n - 1):
        raise ValueError(f"pairing schedules need a power-of-two size, got {n}")
    total_steps = nsteps if nsteps is not None else n - 1
    with obs.span(f"build/{name}", category="build", nprocs=n):
        steps: List[Step] = []
        for j in range(1, total_steps + 1):
            transfers: List[Transfer] = []
            for rank in range(n):
                partner = partner_fn(rank, j)
                if partner == rank:
                    raise ValueError(
                        f"{name}: pairing has a fixed point at rank {rank}, step {j}"
                    )
                if partner_fn(partner, j) != rank:
                    raise ValueError(
                        f"{name}: pairing is not an involution at step {j}: "
                        f"{rank}->{partner}->{partner_fn(partner, j)}"
                    )
                if rank < partner:  # emit each unordered pair once
                    fwd = pattern[rank, partner]
                    rev = pattern[partner, rank]
                    if fwd:
                        transfers.append(Transfer(rank, partner, fwd))
                    if rev:
                        transfers.append(Transfer(partner, rank, rev))
            if transfers or keep_empty_steps:
                steps.append(Step(tuple(transfers)))
        return Schedule(
            nprocs=n,
            steps=tuple(steps),
            name=name,
            exchange_order=LOWER_RECV_FIRST,
        )


def uniform_pairing_schedule(
    nprocs: int,
    nbytes: int,
    partner_fn: Callable[[int, int], int],
    name: str,
) -> Schedule:
    """Pairing schedule for a *uniform* complete exchange.

    Unlike :func:`pairing_schedule` this keeps zero-byte messages: the
    paper's Figures 5-8 sweep message sizes down to 0 bytes, where the
    exchange still performs every rendezvous and pays every latency.
    """
    if nprocs < 2 or nprocs & (nprocs - 1):
        raise ValueError(f"pairing schedules need a power-of-two size, got {nprocs}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    with obs.span(f"build/{name}", category="build", nprocs=nprocs):
        steps = []
        for j in range(1, nprocs):
            transfers = []
            for rank in range(nprocs):
                partner = partner_fn(rank, j)
                if rank < partner:
                    transfers.append(Transfer(rank, partner, nbytes))
                    transfers.append(Transfer(partner, rank, nbytes))
            steps.append(Step(tuple(transfers)))
        return Schedule(
            nprocs=nprocs,
            steps=tuple(steps),
            name=name,
            exchange_order=LOWER_RECV_FIRST,
        )


def _xor_partner(rank: int, j: int) -> int:
    return rank ^ j


def pairwise_schedule(pattern: CommPattern, name: str = "PS") -> Schedule:
    """Pairwise Scheduling of an irregular pattern (paper Table 8)."""
    return pairing_schedule(pattern, _xor_partner, name)


def pairwise_exchange(nprocs: int, nbytes: int) -> Schedule:
    """Pairwise Exchange: complete exchange in N-1 steps (Table 2)."""
    return uniform_pairing_schedule(nprocs, nbytes, _xor_partner, "PEX")
