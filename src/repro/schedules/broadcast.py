"""Broadcast schedules: Linear Broadcast (LIB) and Recursive Broadcast (REB).

Paper Section 3.6.  LIB has the source send the message to each of the
other N-1 processors one at a time.  REB is a recursive-doubling tree in
lg N steps: with source 0, step 1 sends 0 -> N/2, step 2 sends
0 -> N/4 and N/2 -> 3N/4, and so on (Figure 9).

Unlike the *system* broadcast (control network, all nodes of the
partition must participate), both are user-level data-network programs
and can target a subgroup — the "selective broadcast" a mesh-configured
application needs for row/column broadcasts.  REB beats the system
broadcast once the message outgrows the control network's modest
streaming rate (Figures 10-11).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import obs
from .schedule import Schedule, Step, Transfer

__all__ = ["linear_broadcast", "recursive_broadcast"]


def _resolve_group(
    nprocs: int, root: int, group: Optional[Sequence[int]]
) -> List[int]:
    members = list(group) if group is not None else list(range(nprocs))
    if len(set(members)) != len(members):
        raise ValueError("broadcast group has duplicate ranks")
    for m in members:
        if not 0 <= m < nprocs:
            raise ValueError(f"group member {m} outside 0..{nprocs - 1}")
    if root not in members:
        raise ValueError(f"root {root} not in broadcast group")
    return members


def linear_broadcast(
    nprocs: int,
    root: int,
    nbytes: int,
    group: Optional[Sequence[int]] = None,
) -> Schedule:
    """LIB: the root sends to every group member in turn (N-1 steps)."""
    members = _resolve_group(nprocs, root, group)
    with obs.span("build/LIB", category="build", nprocs=nprocs):
        steps = tuple(
            Step((Transfer(root, dst, nbytes),))
            for dst in members
            if dst != root
        )
        return Schedule(nprocs=nprocs, steps=steps, name="LIB")


def recursive_broadcast(
    nprocs: int,
    root: int,
    nbytes: int,
    group: Optional[Sequence[int]] = None,
) -> Schedule:
    """REB: recursive-doubling broadcast in lg |group| steps (Figure 9).

    The group size must be a power of two.  The root is rotated to
    group-relative position 0; in step *j* every member at a position
    divisible by ``2 * distance`` (``distance = |group| / 2**j``)
    forwards the message ``distance`` positions ahead.
    """
    members = _resolve_group(nprocs, root, group)
    n = len(members)
    if n & (n - 1):
        raise ValueError(f"REB group size must be a power of two, got {n}")
    rpos = members.index(root)

    def member_at(pos: int) -> int:
        return members[(pos + rpos) % n]

    with obs.span("build/REB", category="build", nprocs=nprocs):
        steps: List[Step] = []
        nsteps = n.bit_length() - 1
        for j in range(1, nsteps + 1):
            distance = n >> j
            transfers = tuple(
                Transfer(member_at(pos), member_at(pos + distance), nbytes)
                for pos in range(0, n, 2 * distance)
            )
            steps.append(Step(transfers))
        return Schedule(nprocs=nprocs, steps=tuple(steps), name="REB")
