"""Bytes-aware lower bounds on irregular-pattern makespan.

The König chromatic index (:func:`repro.schedules.coloring.optimal_step_count`)
bounds the *step count* of any schedule, but steps are free in that model:
it says nothing about bytes or locality, so it cannot anchor a *time*
optimality gap.  This module derives lower bounds on the makespan of any
schedule that delivers a :class:`CommPattern` on the CM-5 machine model —
schedule-independent quantities every backend (analytic estimator, fluid
DES, packet simulation) must exceed, in the spirit of the certified
optimal-schedule constructions of Träff's broadcast work (PAPERS.md).

Three bounds, each sound for all three cost backends:

* **endpoint** — each rank's software layer is serial, so a rank pays its
  per-message overheads (``send_overhead`` per send, ``recv_overhead``
  per receive, pack/unpack memcpy) in full, and its injection (drain)
  link moves at most ``bw_level1`` bytes/s, so the larger of its total
  sent and received wire bytes is serialized at peak bandwidth.  The
  *max* form (not send+recv summed) is what stays sound under the packet
  backend, which overlaps a rank's send and receive wire time within a
  step while still serializing its software.
* **bisection** — every fat-tree link is a shared resource: the wire
  bytes of all messages routed through it cannot drain faster than the
  link's aggregate capacity (``4**(l-1) * level_bandwidth(l)`` for a
  level-``l`` link, the same profile the fluid and packet networks use;
  contention penalties only lower it).  The binding cut under the CM-5
  profile is usually a root link — the bisection.
* **lp** — the LP relaxation combining both families: minimize ``T``
  subject to ``T >= load(r)`` for every rank resource and ``T >=
  load(c)`` for every link cut.  With fixed (deterministic up-over-down)
  routing the constraint loads are data, not variables, so the LP
  optimum equals the max of the resource loads — the fractional
  relaxation of the scheduling integer program collapses to its
  congestion bound.  We still solve it as an LP (scipy when available,
  a deterministic pure-numpy simplex otherwise) so the machinery is in
  place for topologies with routing freedom, and so the reported bound
  is the solution of a stated optimization problem rather than an
  ad-hoc max.

``makespan_lower_bound`` returns the combined bound with its breakdown;
``repro.analysis.optgap`` divides measured makespans by it to report
per-pattern optimality gaps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.params import (
    FAT_TREE_ARITY,
    CM5Params,
    MachineConfig,
    wire_bytes,
)
from .pattern import CommPattern

__all__ = [
    "LowerBound",
    "endpoint_bound",
    "bisection_bound",
    "lp_bound",
    "makespan_lower_bound",
    "simplex_min_max",
]

#: Cut identifier: (direction, level, subtree index) — the fat tree's
#: LinkId convention (:mod:`repro.machine.fattree`).
CutKey = Tuple[str, int, int]


@dataclass(frozen=True)
class LowerBound:
    """A makespan lower bound with its per-family breakdown."""

    #: The combined bound (seconds): max of the families = LP optimum.
    seconds: float
    #: Tightest per-rank serialized-work bound and the rank it binds on.
    endpoint: float
    endpoint_rank: int
    #: Tightest per-link cut bound and the link it binds on.
    bisection: float
    bisection_cut: Optional[CutKey]
    #: LP relaxation optimum (== max(endpoint, bisection) on the fat
    #: tree's fixed routing; kept separate so a future topology with
    #: routing freedom can report a strictly tighter LP).
    lp: float
    #: Which family binds: "endpoint" or "bisection".
    binding: str

    def describe(self) -> str:
        cut = (
            f"{self.bisection_cut[0]}/L{self.bisection_cut[1]}"
            f"[{self.bisection_cut[2]}]"
            if self.bisection_cut is not None
            else "-"
        )
        return (
            f"bound {self.seconds * 1e3:.3f} ms "
            f"(endpoint {self.endpoint * 1e3:.3f} ms @ rank "
            f"{self.endpoint_rank}, bisection {self.bisection * 1e3:.3f} ms "
            f"@ {cut}; {self.binding} binds)"
        )


# ----------------------------------------------------------------------
# Endpoint bound
# ----------------------------------------------------------------------
def endpoint_bound(
    pattern: CommPattern,
    config: MachineConfig,
    params: Optional[CM5Params] = None,
) -> Tuple[float, int]:
    """Max over ranks of serialized endpoint work: ``(seconds, rank)``.

    Per rank ``r``::

        n_sends(r) * send_overhead + n_recvs(r) * recv_overhead
        + max(sent wire bytes, received wire bytes) / bw_level1

    Sound for every backend: software service is serial per node in all
    three models, each message costs at least its overhead constant, and
    a node's injection/drain link peaks at ``bw_level1`` even for
    cluster-local routes.  The wire term takes the *max* of the two
    directions because the packet backend lets a rank's send and receive
    wire time overlap within a step (the fluid executor's synchronous
    rendezvous would support the sum, but the bound must hold for all
    backends).  Pack/unpack staging is not charged: the paper's
    irregular schedules move payload directly (``pack_bytes == 0``).
    """
    if pattern.nprocs != config.nprocs:
        raise ValueError(
            f"pattern is for {pattern.nprocs} procs, machine has "
            f"{config.nprocs}"
        )
    params = params or config.params
    m = pattern.matrix
    # Wire bytes per message: packetization inflates and floors at one
    # packet, so apply wire_bytes entry-wise on the nonzero slots.
    wires = np.zeros_like(m, dtype=np.float64)
    nz = m > 0
    if nz.any():
        wires[nz] = np.vectorize(wire_bytes, otypes=[np.int64])(m[nz])
    sent = wires.sum(axis=1)
    recvd = wires.sum(axis=0)
    n_sends = nz.sum(axis=1)
    n_recvs = nz.sum(axis=0)
    software = (
        n_sends * params.send_overhead + n_recvs * params.recv_overhead
    )
    per_rank = software + np.maximum(sent, recvd) / params.bw_level1
    rank = int(per_rank.argmax())
    return float(per_rank[rank]), rank


# ----------------------------------------------------------------------
# Bisection / cut bound
# ----------------------------------------------------------------------
def _cut_loads(
    pattern: CommPattern,
    config: MachineConfig,
    params: CM5Params,
) -> Dict[CutKey, float]:
    """Seconds of traffic per fat-tree link: wire bytes / aggregate cap.

    A message from ``src`` to ``dst`` whose route peaks at level ``top``
    ascends the up-links of ``src``'s enclosing subtrees at levels
    ``1..top`` and descends the mirror down-links of ``dst``'s — the
    same deterministic up-over-down paths the fluid and packet networks
    route on.
    """
    loads: Dict[CutKey, float] = {}
    for src, dst, nbytes in pattern.operations():
        w = float(wire_bytes(nbytes))
        s, d = src, dst
        level = 1
        while True:
            up_cap = (
                FAT_TREE_ARITY ** (level - 1) * params.level_bandwidth(level)
            )
            key = ("up", level, s)
            loads[key] = loads.get(key, 0.0) + w / up_cap
            key = ("down", level, d)
            loads[key] = loads.get(key, 0.0) + w / up_cap
            s //= FAT_TREE_ARITY
            d //= FAT_TREE_ARITY
            if s == d:
                break
            level += 1
    return loads


def bisection_bound(
    pattern: CommPattern,
    config: MachineConfig,
    params: Optional[CM5Params] = None,
) -> Tuple[float, Optional[CutKey]]:
    """Max over fat-tree links of (wire bytes through) / (aggregate cap).

    Returns ``(seconds, link)``; the link is ``None`` for an empty
    pattern.  Sound for all backends: the packet network serves one
    packet per ``PACKET_BYTES / capacity`` per link, the fluid network's
    max-min allocation never exceeds a link's (contention-degraded)
    capacity, and the estimator's per-step contention model charges at
    least the shared-capacity drain time of each step's cut traffic.
    """
    if pattern.nprocs != config.nprocs:
        raise ValueError(
            f"pattern is for {pattern.nprocs} procs, machine has "
            f"{config.nprocs}"
        )
    params = params or config.params
    loads = _cut_loads(pattern, config, params)
    if not loads:
        return 0.0, None
    cut = max(loads, key=lambda k: (loads[k], k))
    return loads[cut], cut


# ----------------------------------------------------------------------
# LP relaxation
# ----------------------------------------------------------------------
def simplex_min_max(loads: np.ndarray) -> float:
    """Deterministic dense simplex for ``min T s.t. T >= loads_i``.

    Standard-form phase-II simplex with Bland's rule on the epigraph
    LP::

        min  T
        s.t. T - s_i = loads_i,   s_i >= 0

    i.e. ``T = loads_i + s_i``.  Substituting out ``T`` leaves the
    trivially bounded problem whose optimum is ``max(loads)``; we still
    pivot through the tableau so the pure-numpy path exercises the same
    code shape a non-degenerate LP would (and so a future formulation
    with genuine routing variables can reuse it).  Deterministic: Bland's
    smallest-index rule, no randomized pricing.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    n = loads.size
    # Tableau over basis {T} ∪ {s_i : i != pivot}: start from the basis
    # where T equals loads_0 and slack rows carry loads_i - loads_0;
    # Bland pivots T's defining row to the most violated constraint until
    # all slacks are feasible.  Equivalent to max(loads), computed via
    # explicit ratio-test pivots.
    basis_row = 0
    t_value = float(loads[0])
    for _ in range(n + 1):
        slacks = t_value - loads
        violated = np.nonzero(slacks < -1e-15)[0]
        if violated.size == 0:
            break
        enter = int(violated[0])  # Bland: smallest index
        t_value = float(loads[enter])
        basis_row = enter
    else:  # pragma: no cover - n pivots always suffice
        raise RuntimeError("simplex failed to converge on epigraph LP")
    del basis_row
    return t_value


def lp_bound(
    pattern: CommPattern,
    config: MachineConfig,
    params: Optional[CM5Params] = None,
) -> float:
    """Optimum of the LP relaxation combining endpoint and cut bounds.

    ``min T`` subject to ``T >= load_i`` for every rank resource
    (endpoint serialized work) and every fat-tree link (cut drain time).
    Solved with :func:`scipy.optimize.linprog` when scipy is importable
    and ``REPRO_NO_SCIPY`` is unset, otherwise (or on solver failure)
    with the deterministic pure-numpy simplex — both paths return the
    same value to solver precision, and the fallback is exact.
    """
    params = params or config.params
    rank_loads = _endpoint_loads(pattern, config, params)
    cut_loads = list(_cut_loads(pattern, config, params).values())
    loads = np.array(rank_loads + cut_loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    if not os.environ.get("REPRO_NO_SCIPY"):
        try:
            from scipy.optimize import linprog

            # min c^T x with x = (T,); A_ub x <= b_ub encodes -T <= -load.
            res = linprog(
                c=[1.0],
                A_ub=-np.ones((loads.size, 1)),
                b_ub=-loads,
                bounds=[(0.0, None)],
                method="highs",
            )
            if res.status == 0:
                return float(res.fun)
        except Exception:  # pragma: no cover - scipy absent or solver hiccup
            pass
    return simplex_min_max(loads)


def _endpoint_loads(
    pattern: CommPattern, config: MachineConfig, params: CM5Params
) -> List[float]:
    """Per-rank endpoint loads (the endpoint_bound vector, all ranks)."""
    m = pattern.matrix
    nz = m > 0
    wires = np.zeros_like(m, dtype=np.float64)
    if nz.any():
        wires[nz] = np.vectorize(wire_bytes, otypes=[np.int64])(m[nz])
    software = (
        nz.sum(axis=1) * params.send_overhead
        + nz.sum(axis=0) * params.recv_overhead
    )
    per_rank = software + (
        np.maximum(wires.sum(axis=1), wires.sum(axis=0)) / params.bw_level1
    )
    return [float(x) for x in per_rank]


# ----------------------------------------------------------------------
# Combined
# ----------------------------------------------------------------------
def makespan_lower_bound(
    pattern: CommPattern,
    config: MachineConfig,
    params: Optional[CM5Params] = None,
) -> LowerBound:
    """The combined makespan lower bound with its breakdown.

    ``seconds`` is the LP optimum, which on the fixed-routing fat tree
    equals ``max(endpoint, bisection)``; ``binding`` names the family
    that achieves it.
    """
    params = params or config.params
    ep, rank = endpoint_bound(pattern, config, params)
    bi, cut = bisection_bound(pattern, config, params)
    lp = lp_bound(pattern, config, params)
    combined = max(ep, bi, lp)
    return LowerBound(
        seconds=combined,
        endpoint=ep,
        endpoint_rank=rank,
        bisection=bi,
        bisection_cut=cut,
        lp=lp,
        binding="endpoint" if ep >= bi else "bisection",
    )
