"""Processor-mesh (grid) communication: rows, columns, grid transpose.

Section 3.6's motivation for user-level broadcast trees: "selective
broadcasting is sometimes necessary, for instance, when processors are
configured as a mesh and broadcast along a row or a column is required"
— the CMMD system broadcast cannot address a subgroup.  This module
provides the logical-mesh machinery those applications use:

* :class:`ProcessorMesh` — an ``R x C`` view of a partition with
  row/column rank lists,
* row/column recursive broadcasts (REB restricted to a mesh line),
* row/column complete exchanges (any of the paper's four algorithms,
  run concurrently in every line),
* the grid transpose permutation (rank (i, j) -> rank (j, i)).

All results are ordinary :class:`Schedule` objects for the standard
executor; line-local schedules from different rows compose into single
steps, so an all-rows exchange really is concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .broadcast import recursive_broadcast
from .pattern import CommPattern
from .pex import pairing_schedule
from .schedule import LOWER_RECV_FIRST, Schedule, Step, Transfer

__all__ = ["ProcessorMesh"]


@dataclass(frozen=True)
class ProcessorMesh:
    """A logical ``rows x cols`` arrangement of ranks (row-major)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"bad mesh shape {self.rows}x{self.cols}")

    @property
    def nprocs(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    def rank_of(self, i: int, j: int) -> int:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ValueError(f"coordinate ({i}, {j}) outside the mesh")
        return i * self.cols + j

    def coords_of(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} outside the mesh")
        return divmod(rank, self.cols)

    def row_ranks(self, i: int) -> List[int]:
        return [self.rank_of(i, j) for j in range(self.cols)]

    def col_ranks(self, j: int) -> List[int]:
        return [self.rank_of(i, j) for i in range(self.rows)]

    # ------------------------------------------------------------------
    # Selective broadcasts (Section 3.6's motivating use case)
    # ------------------------------------------------------------------
    def row_broadcast(self, i: int, root_col: int, nbytes: int) -> Schedule:
        """REB along row ``i`` from the member in column ``root_col``."""
        group = self.row_ranks(i)
        sched = recursive_broadcast(
            self.nprocs, self.rank_of(i, root_col), nbytes, group=group
        )
        return Schedule(
            nprocs=self.nprocs,
            steps=sched.steps,
            name=f"ROWBCAST[{i}]",
            exchange_order=sched.exchange_order,
        )

    def col_broadcast(self, j: int, root_row: int, nbytes: int) -> Schedule:
        """REB along column ``j`` from the member in row ``root_row``."""
        group = self.col_ranks(j)
        sched = recursive_broadcast(
            self.nprocs, self.rank_of(root_row, j), nbytes, group=group
        )
        return Schedule(
            nprocs=self.nprocs,
            steps=sched.steps,
            name=f"COLBCAST[{j}]",
            exchange_order=sched.exchange_order,
        )

    # ------------------------------------------------------------------
    # Concurrent line exchanges
    # ------------------------------------------------------------------
    def _line_exchange(
        self, lines: Sequence[List[int]], nbytes: int, name: str
    ) -> Schedule:
        """Pairwise exchange inside every line simultaneously."""
        size = len(lines[0])
        if size & (size - 1):
            raise ValueError(f"line length must be a power of two, got {size}")
        steps: List[List[Transfer]] = [[] for _ in range(size - 1)]
        for members in lines:
            for j in range(1, size):
                for a in range(size):
                    b = a ^ j
                    if a < b:
                        steps[j - 1].append(
                            Transfer(members[a], members[b], nbytes)
                        )
                        steps[j - 1].append(
                            Transfer(members[b], members[a], nbytes)
                        )
        return Schedule(
            nprocs=self.nprocs,
            steps=tuple(Step(tuple(s)) for s in steps),
            name=name,
            exchange_order=LOWER_RECV_FIRST,
        )

    def row_exchange(self, nbytes: int) -> Schedule:
        """Complete exchange within every row, all rows concurrent."""
        return self._line_exchange(
            [self.row_ranks(i) for i in range(self.rows)], nbytes, "ROWXCHG"
        )

    def col_exchange(self, nbytes: int) -> Schedule:
        """Complete exchange within every column, all columns concurrent."""
        return self._line_exchange(
            [self.col_ranks(j) for j in range(self.cols)], nbytes, "COLXCHG"
        )

    # ------------------------------------------------------------------
    def transpose_permutation(self, nbytes: int) -> Schedule:
        """Grid transpose: rank (i, j) sends its block to rank (j, i).

        Requires a square mesh.  Off-diagonal ranks pair up into
        exchanges; diagonal ranks keep their block locally.  One step.
        """
        if self.rows != self.cols:
            raise ValueError("grid transpose needs a square mesh")
        transfers: List[Transfer] = []
        for i in range(self.rows):
            for j in range(self.cols):
                if i != j:
                    transfers.append(
                        Transfer(self.rank_of(i, j), self.rank_of(j, i), nbytes)
                    )
        return Schedule(
            nprocs=self.nprocs,
            steps=(Step(tuple(transfers)),),
            name="GRIDT",
            exchange_order=LOWER_RECV_FIRST,
        )
