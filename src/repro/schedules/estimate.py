"""Closed-form schedule cost estimation (no simulation).

A fast analytic approximation of a schedule's execution time, used to
rank candidate schedules cheaply (e.g. inside a runtime system choosing
a scheduler per pattern, the setting of the paper's Section 4) and as a
sanity cross-check on the simulator.

Model: steps execute in sequence; a step costs the *maximum over
processors* of the sequential message work that processor performs in
it — for an exchange, two message times back to back (the Figure 2/3
orderings are sequential per pair); for the linear family, the
receiver's serialized drain of all its senders.  A message costs
overheads plus packetized wire time at its route's level bandwidth,
degraded by the same capped contention factor the fluid model applies
when the step loads an upper link beyond its capacity profile.

It deliberately ignores cross-step pipelining (a fast pair starting its
next step early) and routing jitter, so it is an *approximation*, not a
bound; the tests check it tracks the simulator within a modest factor
across the paper's workloads, and that it ranks LEX/PEX correctly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from ..machine.params import (
    CM5Params,
    FAT_TREE_ARITY,
    MachineConfig,
    wire_bytes,
)
from .schedule import Schedule, Step

__all__ = ["estimate_schedule_time", "estimate_step_time"]

LinkKey = Tuple[int, int, str]  # (level, subtree index, direction)


def _link_loads(step: Step, config: MachineConfig) -> Dict[LinkKey, int]:
    """Concurrent transfers through each upper fat-tree link this step.

    Concurrency is bounded by endpoints, not message counts: a sender
    injects one message at a time and a receiver drains one at a time
    (the synchronous rendezvous), so a link's concurrent load is the
    number of *distinct* senders below it (up direction) or distinct
    receivers below it (down direction).  This is what keeps the
    estimator honest on the linear family, whose N-1 messages per step
    share a single serialized receiver.
    """
    endpoints: Dict[LinkKey, set] = defaultdict(set)
    for t in step:
        top = config.route_level(t.src, t.dst)
        s, d = t.src, t.dst
        for level in range(2, top + 1):
            s //= FAT_TREE_ARITY
            d //= FAT_TREE_ARITY
            endpoints[(level, s, "up")].add(t.src)
            endpoints[(level, d, "down")].add(t.dst)
    return {k: len(v) for k, v in endpoints.items()}


def estimate_step_time(
    step: Step, config: MachineConfig, params: Optional[CM5Params] = None
) -> float:
    """Analytic cost of one step: max over processors of sequential work."""
    params = params or config.params
    loads = _link_loads(step, config)

    def subtree(node: int, level: int) -> int:
        return node // (FAT_TREE_ARITY ** (level - 1))

    per_proc: Dict[int, float] = defaultdict(float)
    recv_count: Dict[int, int] = defaultdict(int)
    for t in step:
        top = config.route_level(t.src, t.dst)
        rate = params.level_bandwidth(top)
        for level in range(2, top + 1):
            for node, dirn in ((t.src, "up"), (t.dst, "down")):
                load = loads.get((level, subtree(node, level), dirn), 1)
                penalty = min(
                    1.0 + params.switch_contention * max(load - 1, 0),
                    params.contention_cap,
                )
                capacity = (
                    FAT_TREE_ARITY ** (level - 1)
                    * params.level_bandwidth(level)
                    / penalty
                )
                rate = min(rate, capacity / max(load, 1))
        wire = wire_bytes(t.nbytes) / rate
        # The pack memcpy happens on the sender, the unpack on the
        # receiver; charging the sum to both ends double-counts the
        # store-and-forward reshuffle (REX pays it twice over).
        pack = params.memcpy_time(t.pack_bytes)
        unpack = params.memcpy_time(t.unpack_bytes)
        per_proc[t.src] += params.zero_byte_latency + wire + pack
        # A serialized receiver overlaps later senders' setup with its
        # own drain: messages after the first cost service + wire only.
        recv_count[t.dst] += 1
        if recv_count[t.dst] == 1:
            per_proc[t.dst] += params.zero_byte_latency + wire + unpack
        else:
            per_proc[t.dst] += params.recv_overhead + wire + unpack
    return max(per_proc.values(), default=0.0)


def estimate_schedule_time(
    schedule: Schedule,
    config: MachineConfig,
    params: Optional[CM5Params] = None,
) -> float:
    """Sum of analytic step costs — a simulation-free time estimate."""
    if schedule.nprocs != config.nprocs:
        raise ValueError(
            f"schedule is for {schedule.nprocs} procs, machine has "
            f"{config.nprocs}"
        )
    params = params or config.params
    return sum(estimate_step_time(step, config, params) for step in schedule.steps)
