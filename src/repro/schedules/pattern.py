"""Communication patterns: the paper's ``Pattern[i][j]`` matrix.

A communication pattern is a two-dimensional integer array whose entry
``(i, j)`` is the number of bytes processor *i* must send to processor
*j* (Section 4 of the paper).  Regular patterns (complete exchange,
broadcast) are special cases; irregular patterns come from synthetic
generators or from application halo analysis.

The synthetic generator reproduces the paper's methodology: "we have
created synthetic communication patterns with different communication
densities of 10%, 25%, 50% and 75% of complete exchange" — i.e. each
off-diagonal slot is populated (with the chosen message size) with the
given probability-free *exact* fraction of slots, sampled uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["CommPattern", "paper_pattern_P"]


@dataclass(frozen=True)
class _PatternStats:
    """Summary statistics as reported in the paper's Table 12 header."""

    nprocs: int
    density_percent: float
    total_bytes: int
    n_operations: int
    avg_bytes_per_op: float


class CommPattern:
    """An irregular (or regular) communication pattern.

    Immutable wrapper over an ``(N, N)`` array of non-negative ints with a
    zero diagonal.  ``pattern[i, j]`` = bytes from rank ``i`` to ``j``.
    """

    def __init__(self, matrix: Union[np.ndarray, Sequence[Sequence[int]]]):
        m = np.array(matrix, dtype=np.int64, copy=True)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"pattern must be square, got shape {m.shape}")
        if m.shape[0] < 2:
            raise ValueError("pattern needs at least 2 processors")
        if (m < 0).any():
            raise ValueError("pattern entries must be non-negative byte counts")
        if np.diagonal(m).any():
            raise ValueError("pattern diagonal must be zero (no self-messages)")
        m.setflags(write=False)
        self._m = m

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def complete_exchange(cls, nprocs: int, nbytes: int) -> "CommPattern":
        """Every processor sends ``nbytes`` to every other processor."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        m = np.full((nprocs, nprocs), nbytes, dtype=np.int64)
        np.fill_diagonal(m, 0)
        return cls(m)

    @classmethod
    def synthetic(
        cls,
        nprocs: int,
        density: float,
        nbytes: int,
        seed: int = 0,
    ) -> "CommPattern":
        """Random pattern covering an exact ``density`` fraction of slots.

        ``density`` is the fraction of the ``N * (N - 1)`` off-diagonal
        slots that carry a message of ``nbytes`` bytes — the paper's
        "X% of complete exchange".  Sampling is uniform over slots and
        deterministic in ``seed``.
        """
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        rng = np.random.default_rng(seed)
        slots = [(i, j) for i in range(nprocs) for j in range(nprocs) if i != j]
        k = round(density * len(slots))
        chosen = rng.choice(len(slots), size=k, replace=False)
        m = np.zeros((nprocs, nprocs), dtype=np.int64)
        for idx in chosen:
            i, j = slots[idx]
            m[i, j] = nbytes
        return cls(m)

    @classmethod
    def broadcast(cls, nprocs: int, root: int, nbytes: int) -> "CommPattern":
        """One-to-all: the root sends ``nbytes`` to every other rank."""
        m = np.zeros((nprocs, nprocs), dtype=np.int64)
        m[root, :] = nbytes
        m[root, root] = 0
        return cls(m)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(N, N)`` byte matrix."""
        return self._m

    @property
    def nprocs(self) -> int:
        return self._m.shape[0]

    def __getitem__(self, idx: Tuple[int, int]) -> int:
        return int(self._m[idx])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CommPattern) and np.array_equal(
            self._m, other._m
        )

    def __hash__(self) -> int:
        return hash((self._m.shape[0], self._m.tobytes()))

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"CommPattern(nprocs={s.nprocs}, density={s.density_percent:.1f}%, "
            f"avg_bytes={s.avg_bytes_per_op:.0f})"
        )

    # ------------------------------------------------------------------
    # Statistics (Table 12's header row)
    # ------------------------------------------------------------------
    def operations(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every required transfer as ``(src, dst, nbytes)``."""
        src_idx, dst_idx = np.nonzero(self._m)
        for i, j in zip(src_idx.tolist(), dst_idx.tolist()):
            yield i, j, int(self._m[i, j])

    @property
    def n_operations(self) -> int:
        return int(np.count_nonzero(self._m))

    @property
    def total_bytes(self) -> int:
        return int(self._m.sum())

    @property
    def density(self) -> float:
        """Fraction of off-diagonal slots used (1.0 = complete exchange)."""
        n = self.nprocs
        return self.n_operations / (n * (n - 1))

    @property
    def avg_bytes_per_op(self) -> float:
        """Average bytes per communication operation (paper Table 12)."""
        ops = self.n_operations
        return self.total_bytes / ops if ops else 0.0

    def stats(self) -> _PatternStats:
        return _PatternStats(
            nprocs=self.nprocs,
            density_percent=100.0 * self.density,
            total_bytes=self.total_bytes,
            n_operations=self.n_operations,
            avg_bytes_per_op=self.avg_bytes_per_op,
        )

    # ------------------------------------------------------------------
    # Predicates / transforms
    # ------------------------------------------------------------------
    @property
    def is_complete_exchange(self) -> bool:
        off = self._m[~np.eye(self.nprocs, dtype=bool)]
        return bool(off.size and (off == off[0]).all() and off[0] > 0)

    @property
    def is_symmetric(self) -> bool:
        """True when i->j and j->i always carry equal byte counts."""
        return bool(np.array_equal(self._m, self._m.T))

    def symmetrized(self) -> "CommPattern":
        """Pattern with both directions carrying the pairwise max."""
        return CommPattern(np.maximum(self._m, self._m.T))

    def scaled(self, factor: float) -> "CommPattern":
        """Pattern with every entry scaled (rounded) by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return CommPattern(np.rint(self._m * factor).astype(np.int64))

    def sends_of(self, rank: int) -> List[Tuple[int, int]]:
        """``(dst, nbytes)`` list for one sender, ascending destination."""
        row = self._m[rank]
        return [(j, int(row[j])) for j in np.nonzero(row)[0].tolist()]

    def recvs_of(self, rank: int) -> List[Tuple[int, int]]:
        """``(src, nbytes)`` list for one receiver, ascending source."""
        col = self._m[:, rank]
        return [(i, int(col[i])) for i in np.nonzero(col)[0].tolist()]


def paper_pattern_P() -> CommPattern:
    """The 8-processor example pattern 'P' of the paper's Table 6.

    Entries are message *counts* in the paper's illustration; we keep
    them as (unit) byte counts so the schedule tables 7-10 reproduce
    entry-for-entry.
    """
    return CommPattern(
        [
            [0, 1, 0, 1, 0, 1, 1, 0],
            [1, 0, 1, 0, 1, 1, 1, 1],
            [0, 1, 0, 1, 0, 0, 0, 0],
            [1, 0, 1, 0, 1, 1, 1, 0],
            [0, 1, 1, 1, 0, 1, 0, 1],
            [0, 1, 0, 0, 1, 0, 1, 0],
            [1, 0, 1, 1, 0, 1, 0, 1],
            [1, 1, 0, 0, 1, 0, 1, 0],
        ]
    )
