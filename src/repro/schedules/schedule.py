"""Schedule representation: steps of point-to-point transfers.

A *schedule* organizes the transfers of a communication pattern into a
sequence of steps, exactly like the paper's Tables 1-4 and 7-10.  Within
a step, transfers proceed concurrently; a processor appearing in two
opposite-direction transfers with the same partner performs an
*exchange* (rendered ``i <-> j``), a single direction renders ``i -> j``.

Schedules are pure data — no simulated time.  They are produced by the
algorithm modules (:mod:`repro.schedules.pex` etc.), checked by the
validators here, measured by :mod:`repro.schedules.metrics`, and priced
by :mod:`repro.schedules.executor`.

Store-and-forward algorithms (REX) move *staged* data: a transfer's
``pack_bytes`` / ``unpack_bytes`` record the buffer shuffling the node
must perform around the wire operation, and the transferred bytes need
not equal any single pattern entry.  Such schedules are validated by
their own algorithm-specific routing checks instead of
:func:`check_covers_pattern`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .pattern import CommPattern

__all__ = [
    "Transfer",
    "Step",
    "Schedule",
    "ScheduleError",
    "validate_structure",
    "check_covers_pattern",
]

#: Exchange-ordering conventions (who moves first inside a pairwise swap).
LOWER_RECV_FIRST = "lower_recv_first"  # Figure 2 (PEX) and the irregular family
LOWER_SEND_FIRST = "lower_send_first"  # Figure 3 (REX)
_ORDERS = (LOWER_RECV_FIRST, LOWER_SEND_FIRST)


class ScheduleError(ValueError):
    """A schedule violates a structural or coverage invariant."""


@dataclass(frozen=True)
class Transfer:
    """One directed message within a step."""

    src: int
    dst: int
    nbytes: int
    #: Bytes the sender must gather into a staging buffer first (REX).
    pack_bytes: int = 0
    #: Bytes the receiver must scatter out of the staging buffer after.
    unpack_bytes: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ScheduleError(f"self-transfer at rank {self.src}")
        if self.nbytes < 0 or self.pack_bytes < 0 or self.unpack_bytes < 0:
            raise ScheduleError(f"negative byte count in {self}")

    @property
    def pair(self) -> Tuple[int, int]:
        """Unordered endpoint pair."""
        return (self.src, self.dst) if self.src < self.dst else (self.dst, self.src)


@dataclass(frozen=True)
class Step:
    """A set of concurrent transfers."""

    transfers: Tuple[Transfer, ...]

    def __post_init__(self) -> None:
        seen = set()
        for t in self.transfers:
            key = (t.src, t.dst)
            if key in seen:
                raise ScheduleError(f"duplicate transfer {t.src}->{t.dst} in step")
            seen.add(key)

    def __iter__(self) -> Iterator[Transfer]:
        return iter(self.transfers)

    def __len__(self) -> int:
        return len(self.transfers)

    @property
    def participants(self) -> Set[int]:
        out: Set[int] = set()
        for t in self.transfers:
            out.add(t.src)
            out.add(t.dst)
        return out

    def exchanges_and_singles(
        self,
    ) -> Tuple[List[Tuple[Transfer, Transfer]], List[Transfer]]:
        """Split into exchange pairs (both directions) and lone transfers."""
        directed = {(t.src, t.dst): t for t in self.transfers}
        exchanges: List[Tuple[Transfer, Transfer]] = []
        singles: List[Transfer] = []
        used: Set[Tuple[int, int]] = set()
        for t in self.transfers:
            key = (t.src, t.dst)
            if key in used:
                continue
            rev = directed.get((t.dst, t.src))
            if rev is not None:
                lo, hi = sorted((t, rev), key=lambda x: x.src)
                exchanges.append((lo, hi))
                used.add(key)
                used.add((t.dst, t.src))
            else:
                singles.append(t)
                used.add(key)
        return exchanges, singles

    def render(self) -> str:
        """Paper-style cell list: ``0<->4  3->5`` etc."""
        exchanges, singles = self.exchanges_and_singles()
        cells = [f"{lo.src}<->{hi.src}" for lo, hi in exchanges]
        cells += [f"{t.src}->{t.dst}" for t in singles]
        return "  ".join(cells)


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of steps implementing a communication pattern."""

    nprocs: int
    steps: Tuple[Step, ...]
    name: str = "schedule"
    #: Who moves first within an exchange (see module docstring).
    exchange_order: str = LOWER_RECV_FIRST

    def __post_init__(self) -> None:
        if self.exchange_order not in _ORDERS:
            raise ScheduleError(f"unknown exchange order {self.exchange_order!r}")
        for step in self.steps:
            for t in step:
                if not (0 <= t.src < self.nprocs and 0 <= t.dst < self.nprocs):
                    raise ScheduleError(
                        f"transfer {t.src}->{t.dst} outside 0..{self.nprocs - 1}"
                    )

    @property
    def nsteps(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def all_transfers(self) -> Iterator[Tuple[int, Transfer]]:
        """Yield ``(step_index, transfer)`` over the whole schedule."""
        for i, step in enumerate(self.steps):
            for t in step:
                yield i, t

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for _, t in self.all_transfers())

    @property
    def n_messages(self) -> int:
        return sum(len(s) for s in self.steps)

    def rank_ops(self, rank: int, step_idx: int) -> Tuple[List[Transfer], List[Transfer]]:
        """This rank's (sends, recvs) within one step, schedule order.

        Backed by a lazily built per-step index: the executor asks for
        every (rank, step) pair, and rescanning the step each time is
        O(nprocs * n_messages) over a run — quadratic in machine size.
        """
        try:
            index = self._rank_index
        except AttributeError:
            index = []
            for step in self.steps:
                by_rank: dict = {}
                for t in step:
                    by_rank.setdefault(t.src, ([], []))[0].append(t)
                    by_rank.setdefault(t.dst, ([], []))[1].append(t)
                index.append(by_rank)
            object.__setattr__(self, "_rank_index", index)
        ops = index[step_idx].get(rank)
        return ops if ops is not None else ([], [])

    def render_table(self) -> str:
        """Multi-line, paper-style rendering of the whole schedule."""
        lines = [f"{self.name} ({self.nprocs} processors, {self.nsteps} steps)"]
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  Step {i}: {step.render()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------
def validate_structure(
    schedule: Schedule, allow_multi_recv: bool = False
) -> None:
    """Check per-step resource constraints.

    Every processor may appear in at most one send and at most one
    receive per step (it has one network interface and the software
    layer is sequential).  ``allow_multi_recv`` relaxes the receive
    constraint for the linear (LEX/LS) family, whose defining pathology
    is exactly that one node receives from everybody in a step — the
    messages still *happen*, just serialized, which the executor prices.
    """
    for idx, step in enumerate(schedule.steps):
        send_count: Dict[int, int] = {}
        recv_count: Dict[int, int] = {}
        for t in step:
            send_count[t.src] = send_count.get(t.src, 0) + 1
            recv_count[t.dst] = recv_count.get(t.dst, 0) + 1
        for rank, c in send_count.items():
            if c > 1:
                raise ScheduleError(
                    f"{schedule.name}: rank {rank} sends {c} messages in "
                    f"step {idx + 1}"
                )
        if not allow_multi_recv:
            for rank, c in recv_count.items():
                if c > 1:
                    raise ScheduleError(
                        f"{schedule.name}: rank {rank} receives {c} messages "
                        f"in step {idx + 1}"
                    )


def check_covers_pattern(schedule: Schedule, pattern: CommPattern) -> None:
    """Check the schedule delivers the pattern exactly.

    Every required ``(src, dst)`` transfer must appear exactly once with
    exactly the pattern's byte count, and nothing else may appear.  Not
    applicable to store-and-forward schedules (REX), which are validated
    by block routing instead.
    """
    if schedule.nprocs != pattern.nprocs:
        raise ScheduleError(
            f"{schedule.name}: schedule is for {schedule.nprocs} procs, "
            f"pattern for {pattern.nprocs}"
        )
    seen: Dict[Tuple[int, int], int] = {}
    for step_idx, t in schedule.all_transfers():
        key = (t.src, t.dst)
        if key in seen:
            raise ScheduleError(
                f"{schedule.name}: duplicate transfer {t.src}->{t.dst} "
                f"(steps {seen[key] + 1} and {step_idx + 1})"
            )
        seen[key] = step_idx
        required = pattern[t.src, t.dst]
        if required == 0:
            raise ScheduleError(
                f"{schedule.name}: spurious transfer {t.src}->{t.dst} "
                f"(pattern requires none)"
            )
        if t.nbytes != required:
            raise ScheduleError(
                f"{schedule.name}: transfer {t.src}->{t.dst} carries "
                f"{t.nbytes}B, pattern requires {required}B"
            )
    for src, dst, nbytes in pattern.operations():
        if (src, dst) not in seen:
            raise ScheduleError(
                f"{schedule.name}: missing transfer {src}->{dst} ({nbytes}B)"
            )
