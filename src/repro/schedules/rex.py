"""Recursive Exchange (REX): lg N-step store-and-forward all-to-all.

Paper Section 3.3 (Figure 3).  In step *i* (0-based) the machine is
split into groups of ``k = N / 2**i``; each processor exchanges with the
partner ``k/2`` away inside its group, sending *all* the data it
currently holds whose final destination lies in the partner's half —
``n * N / 2`` bytes when each processor owes every other ``n`` bytes.

Fewer steps than PEX (lg N vs N-1), but each step moves N/2 blocks and
requires the node to *reshuffle* its buffers (pack before the send,
unpack after the receive) — the two overheads the paper identifies as
the reason REX loses for large messages on small machines yet wins for
small messages and large machines.

Figure 3's deadlock-free ordering is the opposite of Figure 2's: the
lower-numbered processor of each pair packs and *sends* first
(``exchange_order=LOWER_SEND_FIRST``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .. import obs
from .schedule import LOWER_SEND_FIRST, Schedule, ScheduleError, Step, Transfer

__all__ = ["recursive_exchange", "rex_partner", "verify_block_routing"]


def rex_partner(rank: int, step: int, nprocs: int) -> int:
    """Partner of ``rank`` in 0-based ``step`` (Figure 3's arithmetic)."""
    k = nprocs >> step
    if k < 2:
        raise ValueError(f"step {step} out of range for {nprocs} processors")
    half = k >> 1
    return rank + half if rank % k < half else rank - half


def recursive_exchange(nprocs: int, nbytes: int) -> Schedule:
    """Recursive Exchange schedule for a uniform complete exchange.

    ``nbytes`` is the per-destination payload *n*; every transfer in the
    schedule carries ``n * N / 2`` bytes and charges the same amount of
    pack and unpack work (the store-and-forward reshuffle).
    """
    if nprocs < 2 or nprocs & (nprocs - 1):
        raise ValueError(f"REX needs a power-of-two size >= 2, got {nprocs}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    staged = nbytes * (nprocs // 2)
    with obs.span("build/REX", category="build", nprocs=nprocs):
        steps: List[Step] = []
        nsteps = nprocs.bit_length() - 1  # lg N
        for i in range(nsteps):
            transfers: List[Transfer] = []
            for rank in range(nprocs):
                partner = rex_partner(rank, i, nprocs)
                transfers.append(
                    Transfer(
                        src=rank,
                        dst=partner,
                        nbytes=staged,
                        pack_bytes=staged,
                        unpack_bytes=staged,
                    )
                )
            steps.append(Step(tuple(transfers)))
        return Schedule(
            nprocs=nprocs,
            steps=tuple(steps),
            name="REX",
            exchange_order=LOWER_SEND_FIRST,
        )


def verify_block_routing(nprocs: int) -> Dict[int, Set[Tuple[int, int]]]:
    """Check REX's store-and-forward routing delivers every block.

    Simulates the movement of all ``(src, dst)`` blocks through the
    lg N steps: at the step with group size ``k`` a processor forwards to
    its partner every held block whose destination lies in the partner's
    half of the group.  Verifies that (a) each processor sends exactly
    ``N/2`` blocks per step — the paper's ``n * N / 2`` message size —
    and (b) after the last step every processor holds exactly the blocks
    destined to it.  Returns the final holdings (for tests).
    """
    if nprocs < 2 or nprocs & (nprocs - 1):
        raise ValueError(f"REX needs a power-of-two size >= 2, got {nprocs}")
    holdings: Dict[int, Set[Tuple[int, int]]] = {
        p: {(p, d) for d in range(nprocs) if d != p} for p in range(nprocs)
    }
    nsteps = nprocs.bit_length() - 1
    for i in range(nsteps):
        k = nprocs >> i
        half = k >> 1
        outgoing: Dict[int, Set[Tuple[int, int]]] = {}
        for p in range(nprocs):
            partner = rex_partner(p, i, nprocs)
            p_low = p % k < half
            # Blocks whose destination sits in the partner's half.
            send = {
                blk
                for blk in holdings[p]
                if (blk[1] % k < half) != p_low
            }
            if len(send) != nprocs // 2:
                raise ScheduleError(
                    f"REX routing: rank {p} sends {len(send)} blocks in "
                    f"step {i + 1}, expected {nprocs // 2}"
                )
            outgoing[p] = send
        for p in range(nprocs):
            partner = rex_partner(p, i, nprocs)
            holdings[p] -= outgoing[p]
            holdings[p] |= outgoing[partner]
    for p in range(nprocs):
        expect = {(s, p) for s in range(nprocs) if s != p}
        if holdings[p] != expect:
            raise ScheduleError(
                f"REX routing: rank {p} ended with wrong blocks "
                f"(missing {expect - holdings[p]}, extra {holdings[p] - expect})"
            )
    return holdings
