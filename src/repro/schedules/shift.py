"""Shift: the paper's third regular communication pattern.

Section 3 names "shift, complete exchange, broadcast" as the regular
patterns; shift is the one the paper does not evaluate (every processor
sends one message to the processor ``offset`` positions away, modulo N).
It is the communication kernel of distributed stencil sweeps
(:mod:`repro.apps.stencil`), so the library provides it: a one-step
permutation schedule, executable by the ordinary executor (the mixed
send/receive ordering rule keeps even full rings deadlock-free under
synchronous sends).
"""

from __future__ import annotations

from .schedule import Schedule, Step, Transfer

__all__ = ["shift_schedule"]


def shift_schedule(nprocs: int, offset: int, nbytes: int) -> Schedule:
    """Every rank sends ``nbytes`` to ``(rank + offset) mod nprocs``.

    ``offset`` may be negative (left shift); ``offset % nprocs == 0``
    yields an empty schedule (nothing to move).
    """
    if nprocs < 2:
        raise ValueError(f"need at least 2 processors, got {nprocs}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    k = offset % nprocs
    if k == 0:
        return Schedule(nprocs=nprocs, steps=(), name="SHIFT0")
    transfers = tuple(
        Transfer(src, (src + k) % nprocs, nbytes) for src in range(nprocs)
    )
    return Schedule(
        nprocs=nprocs,
        steps=(Step(transfers),),
        name=f"SHIFT{offset:+d}",
    )
