"""Local-search refinement scheduler for irregular patterns ("local").

The paper's GS/BS are one-shot constructive heuristics; the König
coloring (:mod:`repro.schedules.coloring`) is step-optimal but blind to
bytes and locality.  This module closes the loop: start from the better
of the two seeds and *refine* the step assignment with cost-guided local
moves, priced by the analytic estimator
(:func:`repro.schedules.estimate.estimate_step_time`) — the optimizing
counterpart to the lower bounds in :mod:`repro.schedules.bound`, which
`repro.analysis.optgap` uses to report how much gap the refinement
closes.

Move set
--------
* **move** — relocate one transfer from its step to another step (or a
  fresh step) where both its endpoints are free.  Only transfers whose
  removal strictly lowers their step's cost are candidates (adding a
  transfer never cheapens a step, so a move can only pay for itself with
  savings at the source — this prunes the search to each step's
  critical-processor transfers).
* **swap** — exchange two transfers between two steps when each fits in
  the other's slots; escapes local minima where every one-way move is
  blocked by a full slot.
* **reorder** — swap adjacent steps, accepted on strict estimate
  improvement.  The shipped estimator prices steps independently (the
  sum is order-invariant), so this move never fires today; it is kept so
  an order-sensitive cost model (e.g. one pricing the fluid executor's
  cross-step pipelining) activates it without search changes.

Acceptance is strict first-improvement on the summed step estimates;
candidate visiting order is shuffled by a seeded generator, so the
search is deterministic in ``seed``.  All moves preserve the structural
invariants (one send and one receive per rank per step, byte
conservation, and — because at most one send and one receive per rank
per step makes a rendezvous wait-for cycle impossible under the
executor's recv-from-lower-first ordering — deadlock freedom); the
result is nevertheless linted before it is returned, falling back to the
unrefined seed if a check ever fails.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Set

import numpy as np

from .. import obs
from ..machine.params import CM5Params, MachineConfig
from .coloring import coloring_schedule
from .estimate import estimate_step_time
from .greedy import greedy_schedule
from .pattern import CommPattern
from .schedule import LOWER_RECV_FIRST, Schedule, Step, Transfer
from .validate import lint_schedule

__all__ = ["local_schedule"]

#: Strict-improvement threshold (seconds).  Step costs are ~1e-4..1e-1 s;
#: anything below this is float noise, not a real improvement.
_EPS = 1e-12

#: Default number of improvement passes over the whole schedule.
_MAX_PASSES = 4

#: Per-pass cap on expensive-step swap scans (top-k costliest steps).
_SWAP_TOP_K = 4


@lru_cache(maxsize=32)
def _cost_config(nprocs: int) -> MachineConfig:
    """Machine used to price candidate steps when the caller gave none.

    Rounded up to the next power of two: fat-tree ancestry is integer
    division by the arity, so route levels between ranks below
    ``nprocs`` are identical on the padded machine, and the estimator
    never touches the extra leaves.
    """
    size = 2
    while size < nprocs:
        size *= 2
    return MachineConfig(size)


def local_schedule(
    pattern: CommPattern,
    name: str = "LOCAL",
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    max_passes: int = _MAX_PASSES,
    max_evals: Optional[int] = None,
) -> Schedule:
    """Refine the better of the GS / coloring seeds with local moves.

    ``config`` supplies the machine the estimator prices against
    (default: a partition just large enough for the pattern); ``seed``
    drives the deterministic visiting-order shuffle; ``max_passes`` and
    ``max_evals`` bound the search (the defaults keep the densest
    Table 11 pattern at 32 nodes in the low seconds).
    """
    with obs.span(f"build/{name}", category="build", nprocs=pattern.nprocs):
        return _local_build(pattern, name, config, seed, max_passes, max_evals)


def _local_build(
    pattern: CommPattern,
    name: str,
    config: Optional[MachineConfig],
    seed: int,
    max_passes: int,
    max_evals: Optional[int],
) -> Schedule:
    cfg = config or _cost_config(pattern.nprocs)
    params = cfg.params

    def sched_cost(schedule: Schedule) -> float:
        return sum(
            estimate_step_time(step, cfg, params) for step in schedule.steps
        )

    seeds = [
        greedy_schedule(pattern, name=name),
        coloring_schedule(pattern, name=name),
    ]
    seed_costs = [sched_cost(s) for s in seeds]
    base = seeds[min(range(len(seeds)), key=lambda i: (seed_costs[i], i))]
    if base.nsteps == 0:
        return base

    steps: List[List[Transfer]] = [list(s.transfers) for s in base.steps]
    cost: List[float] = [
        estimate_step_time(s, cfg, params) for s in base.steps
    ]
    send_used: List[Set[int]] = [{t.src for t in s} for s in steps]
    recv_used: List[Set[int]] = [{t.dst for t in s} for s in steps]

    n_messages = sum(len(s) for s in steps)
    budget = (
        max_evals if max_evals is not None else 80 * max(1, n_messages) + 2000
    )
    evals = 0

    def step_cost(transfers: List[Transfer]) -> float:
        nonlocal evals
        evals += 1
        if not transfers:
            return 0.0
        return estimate_step_time(Step(tuple(transfers)), cfg, params)

    def fits(t: Transfer, b: int) -> bool:
        return t.src not in send_used[b] and t.dst not in recv_used[b]

    def detach(t: Transfer, a: int) -> None:
        steps[a].remove(t)
        send_used[a].discard(t.src)
        recv_used[a].discard(t.dst)

    def attach(t: Transfer, b: int) -> None:
        steps[b].append(t)
        send_used[b].add(t.src)
        recv_used[b].add(t.dst)

    rng = np.random.default_rng(seed)
    improved_any = True
    passes = 0
    while improved_any and passes < max_passes and evals < budget:
        passes += 1
        improved_any = False

        # ---- move phase: relocate critical transfers out of hot steps
        by_cost_desc = sorted(
            range(len(steps)), key=lambda i: (-cost[i], i)
        )
        for a in by_cost_desc:
            if evals >= budget:
                break
            units = sorted(steps[a], key=lambda t: (t.src, t.dst))
            rng.shuffle(units)  # deterministic in `seed`
            for t in units:
                if evals >= budget:
                    break
                if t not in steps[a]:
                    continue  # displaced by an earlier accepted swap
                removed = [x for x in steps[a] if x != t]
                new_a = step_cost(removed)
                gain_a = cost[a] - new_a
                if gain_a <= _EPS:
                    # Adding a transfer never cheapens a step, so a move
                    # only pays when the source step gets cheaper.
                    continue
                placed = False
                for b in sorted(
                    range(len(steps)), key=lambda i: (cost[i], i)
                ):
                    if b == a or not fits(t, b):
                        continue
                    if evals >= budget:
                        break
                    new_b = step_cost(steps[b] + [t])
                    if new_a + new_b < cost[a] + cost[b] - _EPS:
                        detach(t, a)
                        attach(t, b)
                        cost[a], cost[b] = new_a, new_b
                        placed = improved_any = True
                        break
                if placed:
                    continue
                # Fresh step: pays only when splitting relieves enough
                # contention in the source step to cover a new step's cost.
                solo = step_cost([t])
                if new_a + solo < cost[a] - _EPS:
                    detach(t, a)
                    steps.append([t])
                    send_used.append({t.src})
                    recv_used.append({t.dst})
                    cost[a] = new_a
                    cost.append(solo)
                    improved_any = True

        # ---- swap phase: unblock the costliest steps
        by_cost_desc = sorted(
            range(len(steps)), key=lambda i: (-cost[i], i)
        )
        for a in by_cost_desc[:_SWAP_TOP_K]:
            if evals >= budget:
                break
            for t in sorted(steps[a], key=lambda t: (t.src, t.dst)):
                if evals >= budget:
                    break
                if t not in steps[a]:
                    continue
                swapped = False
                for b in sorted(
                    range(len(steps)), key=lambda i: (cost[i], i)
                ):
                    if b == a or evals >= budget:
                        continue
                    for u in sorted(steps[b], key=lambda x: (x.src, x.dst)):
                        rest_a_send = send_used[a] - {t.src}
                        rest_a_recv = recv_used[a] - {t.dst}
                        rest_b_send = send_used[b] - {u.src}
                        rest_b_recv = recv_used[b] - {u.dst}
                        if (
                            u.src in rest_a_send
                            or u.dst in rest_a_recv
                            or t.src in rest_b_send
                            or t.dst in rest_b_recv
                        ):
                            continue
                        if evals >= budget:
                            break
                        new_a = step_cost(
                            [x for x in steps[a] if x != t] + [u]
                        )
                        new_b = step_cost(
                            [x for x in steps[b] if x != u] + [t]
                        )
                        if new_a + new_b < cost[a] + cost[b] - _EPS:
                            detach(t, a)
                            detach(u, b)
                            attach(u, a)
                            attach(t, b)
                            cost[a], cost[b] = new_a, new_b
                            swapped = improved_any = True
                            break
                    if swapped:
                        break
                if swapped:
                    continue

        # ---- reorder phase: adjacent-step swaps on strict improvement.
        # The shipped estimator is order-invariant (steps are priced
        # independently), so this never accepts; see module docstring.
        for i in range(len(steps) - 1):
            if evals >= budget:
                break
            before = cost[i] + cost[i + 1]
            after = step_cost(steps[i + 1]) + step_cost(steps[i])
            if after < before - _EPS:  # pragma: no cover - order-invariant
                steps[i], steps[i + 1] = steps[i + 1], steps[i]
                send_used[i], send_used[i + 1] = send_used[i + 1], send_used[i]
                recv_used[i], recv_used[i + 1] = recv_used[i + 1], recv_used[i]
                cost[i], cost[i + 1] = cost[i + 1], cost[i]
                improved_any = True

    refined = Schedule(
        nprocs=pattern.nprocs,
        steps=tuple(Step(tuple(s)) for s in steps if s),
        name=name,
        exchange_order=LOWER_RECV_FIRST,
    )
    # The moves preserve every invariant by construction; lint anyway and
    # fall back to the seed rather than ever returning a broken schedule.
    if not lint_schedule(refined, pattern).ok:  # pragma: no cover - safety net
        return base
    return refined
