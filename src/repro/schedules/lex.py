"""Linear Exchange (LEX) and Linear Scheduling (LS).

The simplest algorithm (paper Section 3.1): for an N-processor system
there are N steps, and in step *i* processor *i* receives a message from
every other processor.  Under the CM-5's synchronous-communication
constraint all those senders rendezvous with a single receiver that can
only service one message at a time, which serializes the step — the
reason LEX/LS perform far worse than everything else throughout the
paper's evaluation.

Linear Scheduling (Section 4.1) is the same structure driven by an
irregular ``Pattern`` matrix: in step *i* only the processors with
``Pattern[j][i] > 0`` send; the rest idle.
"""

from __future__ import annotations

from typing import List

from .. import obs
from .pattern import CommPattern
from .schedule import Schedule, Step, Transfer

__all__ = ["linear_schedule", "linear_exchange"]


def linear_schedule(pattern: CommPattern, name: str = "LS") -> Schedule:
    """Linear Scheduling of an irregular pattern (paper Table 7).

    Step *i* delivers every pending message whose destination is rank
    *i*, in ascending sender order (the order the receiver posts its
    receives).  Steps with no communication are dropped from the
    schedule, matching how the paper counts steps.
    """
    n = pattern.nprocs
    with obs.span(f"build/{name}", category="build", nprocs=n):
        steps: List[Step] = []
        for receiver in range(n):
            transfers = tuple(
                Transfer(src=src, dst=receiver, nbytes=nbytes)
                for src, nbytes in pattern.recvs_of(receiver)
            )
            if transfers:
                steps.append(Step(transfers))
        return Schedule(nprocs=n, steps=tuple(steps), name=name)


def linear_exchange(nprocs: int, nbytes: int) -> Schedule:
    """Linear Exchange: complete exchange scheduled linearly (Table 1).

    Zero-byte messages are kept (the rendezvous and its latency still
    happen), so the Figure 5/6 sweeps can start at 0 bytes.
    """
    if nprocs < 2:
        raise ValueError(f"need at least 2 processors, got {nprocs}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    with obs.span("build/LEX", category="build", nprocs=nprocs):
        steps = tuple(
            Step(
                tuple(
                    Transfer(src=j, dst=i, nbytes=nbytes)
                    for j in range(nprocs)
                    if j != i
                )
            )
            for i in range(nprocs)
        )
        return Schedule(nprocs=nprocs, steps=steps, name="LEX")
