"""Facade over the four irregular-pattern schedulers (Section 4).

The paper evaluates Linear (LS), Pairwise (PS), Balanced (BS) and Greedy
(GS) scheduling of a ``Pattern`` matrix.  This module gives them one
dispatchable registry so the benchmark harness and CLI can sweep
algorithms by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .bex import balanced_schedule
from .greedy import greedy_schedule
from .lex import linear_schedule
from .localsearch import local_schedule
from .pattern import CommPattern
from .pex import pairwise_schedule
from .schedule import Schedule

__all__ = [
    "IRREGULAR_ALGORITHMS",
    "schedule_irregular",
    "linear_schedule",
    "pairwise_schedule",
    "balanced_schedule",
    "greedy_schedule",
    "local_schedule",
]

#: Paper Section 4's algorithms, keyed by the names used in Tables 11-12,
#: plus the repository's local-search refinement ("local" — not in the
#: paper; it seeds from GS/coloring and refines with estimator-guided
#: moves, see :mod:`repro.schedules.localsearch`).
IRREGULAR_ALGORITHMS: Dict[str, Callable[[CommPattern], Schedule]] = {
    "linear": linear_schedule,
    "pairwise": pairwise_schedule,
    "balanced": balanced_schedule,
    "greedy": greedy_schedule,
    "local": local_schedule,
}


def schedule_irregular(pattern: CommPattern, algorithm: str) -> Schedule:
    """Schedule ``pattern`` with the named algorithm.

    The schedule need only be computed once per pattern and is then
    reused for every iteration of the application (Section 4.5: the
    scheduling cost amortizes over the solver's iterations).
    """
    try:
        builder = IRREGULAR_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; "
            f"choose from {sorted(IRREGULAR_ALGORITHMS)}"
        ) from None
    return builder(pattern)


def algorithm_names() -> List[str]:
    """Algorithm names in paper order (the registry's insertion order).

    Derived from :data:`IRREGULAR_ALGORITHMS` so adding an algorithm to
    the registry automatically propagates to every sweep and CLI choice
    list — a hardcoded copy here once drifted from the registry.
    """
    return list(IRREGULAR_ALGORITHMS)
