"""The executor: replay a communication plan with real data.

PARTI/CHAOS inspector-executor, step two.  Given a
:class:`CommunicationPlan` and each rank's local segment of the
distributed array, the executor moves the planned ghost values through
the simulated CM-5 under the plan's schedule and hands every rank a
resolver covering *all* its requested global indices (owned ones
locally, ghosts from the received messages).

``run_gather`` is the whole-array convenience used by tests and the
example; ``gather_ops`` is the rank-program fragment applications embed
in their own SPMD programs (the distributed CG/Euler solvers in
:mod:`repro.apps` are hand-rolled versions of exactly this loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cmmd.api import Comm
from ..cmmd.program import run_spmd
from ..faults.plan import FaultPlan
from ..machine.params import MachineConfig
from ..schedules.executor import schedule_program
from .inspector import CommunicationPlan

__all__ = ["GatherResult", "gather_ops", "run_gather"]


@dataclass
class GatherResult:
    """Outcome of one executed gather."""

    #: Per-rank dict: global index -> value, covering owned + ghost.
    resolved: List[Dict[int, float]]
    sim_time: float
    message_count: int


def gather_ops(
    comm: Comm, plan: CommunicationPlan, local_values: np.ndarray
):
    """Rank-program fragment: exchange ghosts, return {global: value}.

    ``local_values`` is this rank's owned segment, ordered like
    ``plan.distribution.owned[rank]``.  Use with ``yield from``; the
    returned dict resolves every owned and every planned ghost index.
    """
    rank = comm.rank
    dist = plan.distribution
    if len(local_values) != dist.local_size(rank):
        raise ValueError(
            f"rank {rank}: segment has {len(local_values)} entries, "
            f"owns {dist.local_size(rank)}"
        )
    outbox = {
        dst: np.asarray(local_values)[offsets]
        for dst, offsets in plan.send_locals[rank].items()
    }
    inbox: Dict[int, np.ndarray] = {}
    yield from schedule_program(comm, plan.schedule, outbox=outbox, inbox=inbox)

    resolved: Dict[int, float] = {
        int(g): float(v)
        for g, v in zip(dist.owned[rank], np.asarray(local_values))
    }
    for src, values in inbox.items():
        for g, v in zip(plan.recv_globals[rank][src], values):
            resolved[int(g)] = float(v)
    return resolved


def run_gather(
    plan: CommunicationPlan,
    config: MachineConfig,
    global_array: np.ndarray,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    tracer=None,
) -> GatherResult:
    """Execute the plan once over a known global array (validation path).

    ``faults`` optionally injects a :class:`~repro.faults.FaultPlan`:
    because the executor's sends are reliable, gathered values stay
    correct even under message drops — only the timing degrades.
    ``tracer`` optionally attaches a :class:`repro.obs.Tracer`.
    """
    if config.nprocs != plan.nprocs:
        raise ValueError(
            f"plan is for {plan.nprocs} ranks, machine has {config.nprocs}"
        )
    segments = plan.distribution.scatter_array(np.asarray(global_array, dtype=float))

    def program(comm: Comm):
        out = yield from gather_ops(comm, plan, segments[comm.rank])
        return out

    from .. import obs

    with obs.span(f"execute/gather[{plan.schedule.name}]", category="execute"):
        sim = run_spmd(
            config,
            program,
            seed=seed,
            faults=faults,
            tracer=tracer if tracer is not None else obs.current(),
        )
    return GatherResult(
        resolved=list(sim.results),
        sim_time=sim.makespan,
        message_count=sim.message_count,
    )
