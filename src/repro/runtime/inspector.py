"""The inspector: turn raw global indices into a communication plan.

PARTI/CHAOS inspector-executor, step one.  Each rank declares the
*global* indices its local computation will read (e.g. the column
indices of its sparse-matrix rows, or the far ends of its mesh edges).
The inspector:

1. translates them against the :class:`Distribution` (who owns what),
2. deduplicates the off-processor ones into a ghost list per source,
3. produces the ``Pattern[i][j]`` byte matrix — exactly the object the
   paper's Section 4 schedules — and the send/recv index lists the
   executor replays every iteration.

The plan is built once; Section 4.5's amortization argument is the
whole point of the split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..schedules.irregular import schedule_irregular
from ..schedules.pattern import CommPattern
from ..schedules.schedule import Schedule
from .translation import Distribution

__all__ = ["CommunicationPlan", "build_plan"]


@dataclass(frozen=True)
class CommunicationPlan:
    """Everything needed to replay one irregular gather, forever.

    ``send_locals[r][dst]`` — local offsets (on rank ``r``) of the owned
    elements rank ``dst`` needs; ``recv_globals[r][src]`` — the global
    indices rank ``r`` will receive from ``src`` (sorted, matching the
    sender's order).  ``pattern`` is the byte matrix; ``schedule`` the
    chosen scheduling of it.
    """

    distribution: Distribution
    word_bytes: int
    send_locals: List[Dict[int, np.ndarray]]
    recv_globals: List[Dict[int, np.ndarray]]
    pattern: CommPattern
    schedule: Schedule

    @property
    def nprocs(self) -> int:
        return self.distribution.nprocs

    def ghost_count(self, rank: int) -> int:
        return sum(len(v) for v in self.recv_globals[rank].values())

    def describe(self) -> str:
        s = self.pattern.stats()
        return (
            f"plan over {self.nprocs} ranks: {s.n_operations} messages, "
            f"{s.density_percent:.1f}% density, "
            f"{s.avg_bytes_per_op:.0f} B/message, "
            f"{self.schedule.name} in {self.schedule.nsteps} steps"
        )


def build_plan(
    distribution: Distribution,
    requests: Sequence[np.ndarray],
    word_bytes: int = 8,
    algorithm: str = "greedy",
) -> CommunicationPlan:
    """Inspect per-rank global index requests and build the plan.

    ``requests[r]`` is the (possibly duplicated, unsorted) array of
    global indices rank ``r`` reads.  On-processor references are
    satisfied locally and never communicated.
    """
    nprocs = distribution.nprocs
    if len(requests) != nprocs:
        raise ValueError(f"need {nprocs} request arrays, got {len(requests)}")

    # Deduplicated off-processor needs: needer rank -> owner -> globals.
    recv_globals: List[Dict[int, np.ndarray]] = [dict() for _ in range(nprocs)]
    for r, req in enumerate(requests):
        g = np.unique(np.asarray(req, dtype=np.int64))
        if g.size and (g.min() < 0 or g.max() >= distribution.n_global):
            raise IndexError(f"rank {r}: request index out of range")
        owners = distribution.owner[g]
        for src in np.unique(owners):
            if src == r:
                continue
            recv_globals[r][int(src)] = g[owners == src]

    send_locals: List[Dict[int, np.ndarray]] = [dict() for _ in range(nprocs)]
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    for r in range(nprocs):
        for src, globals_needed in recv_globals[r].items():
            send_locals[src][r] = distribution.local_offset[globals_needed]
            matrix[src, r] = len(globals_needed) * word_bytes

    pattern = CommPattern(matrix)
    schedule = schedule_irregular(pattern, algorithm)
    return CommunicationPlan(
        distribution=distribution,
        word_bytes=word_bytes,
        send_locals=send_locals,
        recv_globals=recv_globals,
        pattern=pattern,
        schedule=schedule,
    )
