"""Global/local index translation for distributed irregular arrays.

The PARTI/CHAOS-style runtime layer the paper's Section 4 sits on (the
authors thank Joel Saltz; the companion SHPCC'92 paper is the runtime
mapping side of this work) keeps a *translation table*: which processor
owns each global array element and where it lives locally.  Solvers
hand the runtime raw global indices; the inspector turns them into a
communication pattern once, and iterations replay it.

This module provides the ownership/translation substrate:

* :class:`Distribution` — an ownership map (block or irregular) with
  global->(owner, local offset) lookup, vectorized over NumPy arrays;
* each rank's local segment order is its sorted list of owned globals,
  so translation is deterministic and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

__all__ = ["Distribution"]


@dataclass(frozen=True)
class Distribution:
    """Ownership of ``n_global`` array elements over ``nprocs`` ranks."""

    owner: np.ndarray  # (n_global,) rank owning each element

    def __post_init__(self) -> None:
        o = np.asarray(self.owner)
        if o.ndim != 1 or o.size == 0:
            raise ValueError("owner must be a non-empty 1-D array")
        if o.min() < 0:
            raise ValueError("owner ranks must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def block(cls, n_global: int, nprocs: int) -> "Distribution":
        """Contiguous block distribution (the regular baseline)."""
        if nprocs < 1 or n_global < nprocs:
            raise ValueError(f"cannot block-distribute {n_global} over {nprocs}")
        bounds = np.linspace(0, n_global, nprocs + 1).astype(np.int64)
        owner = np.zeros(n_global, dtype=np.int64)
        for r in range(nprocs):
            owner[bounds[r] : bounds[r + 1]] = r
        return cls(owner)

    @classmethod
    def from_labels(cls, labels: np.ndarray) -> "Distribution":
        """Irregular distribution from per-element part labels (e.g. the
        RCB partition of mesh vertices)."""
        return cls(np.asarray(labels, dtype=np.int64).copy())

    # ------------------------------------------------------------------
    @property
    def n_global(self) -> int:
        return int(self.owner.size)

    @cached_property
    def nprocs(self) -> int:
        return int(self.owner.max()) + 1

    @cached_property
    def owned(self) -> List[np.ndarray]:
        """owned[r] = sorted global indices owned by rank r."""
        return [
            np.flatnonzero(self.owner == r) for r in range(self.nprocs)
        ]

    @cached_property
    def local_offset(self) -> np.ndarray:
        """(n_global,) position of each global element in its owner's
        local segment."""
        off = np.empty(self.n_global, dtype=np.int64)
        for verts in self.owned:
            off[verts] = np.arange(len(verts))
        return off

    # ------------------------------------------------------------------
    def locate(self, global_idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized global -> (owner rank, local offset)."""
        g = np.asarray(global_idx, dtype=np.int64)
        if g.size and (g.min() < 0 or g.max() >= self.n_global):
            raise IndexError("global index out of range")
        return self.owner[g], self.local_offset[g]

    def local_size(self, rank: int) -> int:
        return len(self.owned[rank])

    def to_global(self, rank: int, local_idx: np.ndarray) -> np.ndarray:
        """Local offsets on ``rank`` -> global indices."""
        return self.owned[rank][np.asarray(local_idx, dtype=np.int64)]

    def scatter_array(self, data: np.ndarray) -> List[np.ndarray]:
        """Split a global array into per-rank local segments."""
        if data.shape[0] != self.n_global:
            raise ValueError(
                f"array has {data.shape[0]} rows, distribution {self.n_global}"
            )
        return [data[verts] for verts in self.owned]

    def gather_array(self, segments: List[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank segments into the global array."""
        if len(segments) != self.nprocs:
            raise ValueError(f"need {self.nprocs} segments, got {len(segments)}")
        first = np.asarray(segments[0])
        out = np.empty((self.n_global,) + first.shape[1:], dtype=first.dtype)
        for r, seg in enumerate(segments):
            out[self.owned[r]] = seg
        return out
