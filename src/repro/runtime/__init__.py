"""PARTI/CHAOS-style runtime layer: inspector/executor over the simulator.

The context of the paper's Section 4 (and of the authors' companion
runtime-mapping work with Saltz): irregular problems hand the runtime
raw global indices; an *inspector* builds the communication pattern and
schedule once; an *executor* replays it every iteration.

* :class:`Distribution` — ownership + global/local translation,
* :func:`build_plan` / :class:`CommunicationPlan` — the inspector,
* :func:`gather_ops` / :func:`run_gather` — the executor.
"""

from .translation import Distribution
from .inspector import CommunicationPlan, build_plan
from .executor import GatherResult, gather_ops, run_gather

__all__ = [
    "Distribution",
    "CommunicationPlan",
    "build_plan",
    "GatherResult",
    "gather_ops",
    "run_gather",
]
