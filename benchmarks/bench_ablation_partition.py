"""Ablation: partition quality drives the irregular pattern (Section 4).

Table 12's patterns come from RCB-partitioned meshes.  This ablation
re-runs one workload with a locality-free random partition: the halo
pattern inflates (higher density, more total bytes), every scheduler
slows down, and the scheduling *rankings* stay intact — evidence the
paper's conclusions are about the scheduling layer, robust to the
mapping layer above it (the authors' companion work).
"""

import pytest

from repro.analysis.compare import ShapeCheck, summarize
from repro.analysis.tables import format_table
from repro.apps import build_halo, paper_mesh, random_partition, rcb_partition
from repro.machine import MachineConfig
from repro.schedules import algorithm_names, execute_schedule, schedule_irregular

NPROCS = 32
MESH = "euler2k"
WORDS = 3


@pytest.mark.benchmark(group="ablation")
def test_partition_quality(benchmark, emit):
    mesh = paper_mesh(MESH)

    def sweep():
        out = {}
        for label, labels in (
            ("rcb", rcb_partition(mesh.points, NPROCS)),
            ("random", random_partition(mesh.n_vertices, NPROCS, seed=7)),
        ):
            halo = build_halo(mesh, labels, NPROCS)
            pattern = halo.pattern(word_bytes=8, words_per_vertex=WORDS)
            cfg = MachineConfig(NPROCS)
            times = {
                alg: execute_schedule(
                    schedule_irregular(pattern, alg), cfg
                ).time
                for alg in algorithm_names()
            }
            out[label] = (pattern.stats(), times)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for label, (stats, times) in data.items():
        rows.append(
            [
                label,
                f"{stats.density_percent:.1f}%",
                stats.total_bytes,
                *[times[a] * 1e3 for a in algorithm_names()],
            ]
        )
    table = format_table(
        ["partition", "density", "total bytes"]
        + [f"{a} (ms)" for a in algorithm_names()],
        rows,
        title=f"Partition quality ablation: {MESH} on {NPROCS} nodes",
    )

    rcb_stats, rcb_times = data["rcb"]
    rnd_stats, rnd_times = data["random"]
    checks = [
        ShapeCheck(
            "random partition inflates traffic",
            rnd_stats.total_bytes > 2 * rcb_stats.total_bytes,
            f"{rnd_stats.total_bytes} vs {rcb_stats.total_bytes} bytes",
        ),
        ShapeCheck(
            "every scheduler slows down",
            all(rnd_times[a] > rcb_times[a] for a in algorithm_names()),
            "random >= rcb per algorithm",
        ),
        ShapeCheck(
            "linear stays worst under both mappings",
            max(rcb_times, key=rcb_times.get) == "linear"
            and max(rnd_times, key=rnd_times.get) == "linear",
            "ranking robust to the mapping layer",
        ),
    ]
    emit("ablation_partition", table + "\n\n" + summarize(checks))
    benchmark.extra_info["traffic_inflation"] = round(
        rnd_stats.total_bytes / rcb_stats.total_bytes, 2
    )
    assert all(c.passed for c in checks)
