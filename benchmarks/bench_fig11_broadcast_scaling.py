"""Figure 11: recursive vs system broadcast across machine sizes.

Shape claims checked:

* the system broadcast curve is flat in machine size (one curve
  suffices, as in the paper);
* REB cost grows with machine size (lg N store-and-forward hops);
* for large messages REB still beats the system broadcast on 32 nodes,
  while on very large partitions the system broadcast's flatness keeps
  it competitive longer (the paper's crossover moves from ~1 KB at 32
  nodes to ~2 KB at 256; our model reproduces the same direction of
  motion).
"""

import pytest

from repro.analysis import summarize
from repro.analysis.compare import ShapeCheck, crossover_x
from repro.analysis.experiments import broadcast_time, fig11_data

from conftest import MACHINES


@pytest.mark.benchmark(group="fig11")
def test_fig11_broadcast_scaling(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: fig11_data(machines=MACHINES), rounds=1, iterations=1
    )

    small, big = MACHINES[0], MACHINES[-1]
    sys_small = broadcast_time("system", small, 2048)
    sys_big = broadcast_time("system", big, 2048)
    checks = [
        ShapeCheck(
            "system broadcast flat",
            abs(sys_big - sys_small) / sys_small < 0.05,
            f"{sys_small * 1e3:.3f} ms @{small} vs {sys_big * 1e3:.3f} ms @{big}",
        ),
        ShapeCheck(
            "REB grows with machine",
            broadcast_time("reb", big, 2048) > broadcast_time("reb", small, 2048),
            "2KB REB cost vs machine size",
        ),
    ]
    # Crossover moves right as machines grow.
    sizes = [256, 512, 1024, 2048, 4096, 8192, 16384]
    crossings = {}
    for n in (small, big):
        reb = [broadcast_time("reb", n, s) for s in sizes]
        sysb = [broadcast_time("system", n, s) for s in sizes]
        crossings[n] = crossover_x(sizes, sysb, reb)
    if crossings[small] is not None:
        later = crossings[big] is None or crossings[big] > crossings[small]
        checks.append(
            ShapeCheck(
                "crossover moves right with machine size",
                later,
                f"{crossings[small]:.0f} B @{small} -> "
                + (f"{crossings[big]:.0f} B" if crossings[big] else ">16 KB")
                + f" @{big}",
            )
        )

    text = fig.render() + "\n\n" + fig.to_csv() + "\n" + summarize(checks)
    emit("fig11_broadcast_scaling", text)
    benchmark.extra_info["crossover_small"] = crossings.get(small)
    benchmark.extra_info["crossover_big"] = crossings.get(big)
    assert all(c.passed for c in checks)
