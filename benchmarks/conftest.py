"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's exhibits, prints the
paper-vs-measured comparison, saves it under ``results/``, and attaches
the key numbers to pytest-benchmark's ``extra_info``.  Host wall time of
the regeneration is what pytest-benchmark measures (a single round — the
simulated 1992 milliseconds inside are the scientific payload, carried
in extra_info and the results files).

Scale control: set ``REPRO_BENCH_SCALE=small`` to shrink machine sweeps
for a quick pass; the default regenerates the paper's full grids (up to
256 simulated nodes; the first uncached run takes tens of minutes, after
which results replay from ``.sim_cache``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

SMALL = os.environ.get("REPRO_BENCH_SCALE", "full") == "small"

#: Machine sweep used by the figure benchmarks.
MACHINES = (16, 32) if SMALL else (16, 32, 64, 128, 256)
#: Machine sizes used by Table 5.
FFT_MACHINES = (32,) if SMALL else (32, 256)
FFT_ARRAYS = (256, 512) if SMALL else (256, 512, 1024, 2048)


def save_result(name: str, text: str) -> Path:
    """Write one exhibit's rendered output under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def emit(capsys):
    """Print an exhibit through captured stdout AND persist it."""

    def _emit(name: str, text: str) -> None:
        path = save_result(name, text)
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _emit
