"""Ablation: greedy step counts vs the König optimum across density.

Mechanism behind Table 11's crossover: below ~50% density GS finishes in
fewer steps than the fixed N-1 pairings (and stays near the provable
optimum from :mod:`repro.schedules.coloring`); above it, its unaligned
choices exceed N-1 steps, handing the win back to BS/PS.

Also reports the step-optimal coloring schedule's *time*: step-optimal
is not time-optimal — the coloring ignores locality and sizes — which
is why the paper's heuristics remain interesting.
"""

import pytest

from repro.analysis.compare import ShapeCheck, summarize
from repro.analysis.tables import format_table
from repro.machine import MachineConfig
from repro.schedules import (
    CommPattern,
    balanced_schedule,
    coloring_schedule,
    execute_schedule,
    greedy_schedule,
    optimal_step_count,
    pairwise_schedule,
)

NPROCS = 32
NBYTES = 256
DENSITIES = (0.10, 0.25, 0.50, 0.75, 0.90)


@pytest.mark.benchmark(group="ablation")
def test_greedy_vs_optimal_steps(benchmark, emit):
    cfg = MachineConfig(NPROCS)

    def sweep():
        rows = []
        for d in DENSITIES:
            pat = CommPattern.synthetic(NPROCS, d, NBYTES, seed=42)
            gs = greedy_schedule(pat)
            ps = pairwise_schedule(pat)
            bs = balanced_schedule(pat)
            opt = coloring_schedule(pat)
            t_gs = execute_schedule(gs, cfg).time
            t_opt = execute_schedule(opt, cfg).time
            rows.append(
                (
                    d,
                    optimal_step_count(pat),
                    gs.nsteps,
                    ps.nsteps,
                    bs.nsteps,
                    t_gs,
                    t_opt,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        [
            "density",
            "optimal steps",
            "GS steps",
            "PS steps",
            "BS steps",
            "GS time (ms)",
            "OPT time (ms)",
        ],
        [
            [f"{d:.0%}", o, g, p, b, tg * 1e3, to * 1e3]
            for d, o, g, p, b, tg, to in rows
        ],
        title=f"Greedy vs optimal scheduling ({NPROCS} nodes, {NBYTES}B)",
    )

    sparse = [r for r in rows if r[0] < 0.5]
    dense = [r for r in rows if r[0] >= 0.75]
    checks = [
        ShapeCheck(
            "GS within 20% of optimal steps when sparse",
            all(g <= 1.2 * o + 1 for _, o, g, *_ in sparse),
            "; ".join(f"{d:.0%}: {g} vs {o}" for d, o, g, *_ in sparse),
        ),
        ShapeCheck(
            "GS exceeds N-1 steps when dense",
            any(g > NPROCS - 1 for _, _, g, *_ in dense),
            "; ".join(f"{d:.0%}: {g}" for d, _, g, *_ in dense),
        ),
        ShapeCheck(
            "fixed pairings never exceed N-1 steps",
            all(r[3] <= NPROCS - 1 and r[4] <= NPROCS - 1 for r in rows),
            "PS/BS step counts bounded by N-1",
        ),
        ShapeCheck(
            "step-optimal is not always time-optimal",
            any(to > tg for *_r, tg, to in rows),
            "coloring ignores locality/sizes",
        ),
    ]
    emit("ablation_greedy", table + "\n\n" + summarize(checks))
    benchmark.extra_info["densities"] = list(DENSITIES)
    assert all(c.passed for c in checks)
