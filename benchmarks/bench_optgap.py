"""Optimality-gap benchmark: heuristics vs proven makespan lower bounds.

Runs :func:`repro.analysis.optgap.run_optgap` over the Table 11 density
sweep and the Table 12 application patterns, pricing every irregular
scheduler (LS/PS/BS/GS, König coloring, local search) through all three
backends and dividing by the flow/LP lower bound.  The assertions are
the harness's teeth:

* every gap >= 1.0 (a smaller gap means the bound is unsound);
* every schedule passes the linter before it is priced;
* at full scale, the local-search refiner strictly beats GS *and* BS on
  the fluid makespan for at least one Table 11 density and at least one
  Table 12 application pattern.

Artifacts land in ``results/optgap.{txt,json}`` (schema
``repro-optgap/1``).  Run standalone (``python
benchmarks/bench_optgap.py [--quick]``) or under pytest
(``PYTHONPATH=src python -m pytest benchmarks/bench_optgap.py``; quick
scale when ``REPRO_BENCH_SCALE=small``).
"""

import argparse
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.optgap import render_optgap, run_optgap, write_optgap


def run_and_save(quick: bool, progress=None) -> tuple:
    """Run the sweep and persist results/optgap.{txt,json}."""
    report = run_optgap(quick=quick, progress=progress)
    paths = write_optgap(report, results_dir=_REPO_ROOT / "results")
    return report, paths


def test_optgap(emit):
    quick = os.environ.get("REPRO_BENCH_SCALE", "full") == "small"
    report, _ = run_and_save(quick)
    emit("optgap", render_optgap(report))
    assert report.unsound == [], "a measured makespan undercut the bound"
    assert report.lint_failures == [], "a scheduler emitted a bad schedule"
    assert report.ok
    if not quick:
        wins = report.local_wins
        assert any(w.startswith("table11/") for w in wins), (
            "local search should beat GS and BS (fluid) on at least one "
            f"Table 11 density; wins={wins}"
        )
        assert any(w.startswith("table12/") for w in wins), (
            "local search should beat GS and BS (fluid) on at least one "
            f"Table 12 application pattern; wins={wins}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="N=8/16 grid (CI smoke scale) instead of the 32-node sweep",
    )
    cli_args = parser.parse_args()
    doc, out_paths = run_and_save(cli_args.quick, progress=print)
    print()
    print(render_optgap(doc))
    print(f"[saved to {' and '.join(str(p) for p in out_paths)}]")
    sys.exit(0 if doc.ok else 1)
