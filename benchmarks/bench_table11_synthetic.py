"""Table 11: irregular scheduling of synthetic patterns on 32 processors.

Densities 10/25/50/75% of a complete exchange at 256 and 512 bytes,
printed against the paper's milliseconds.  Shape claims checked:

* linear scheduling is the worst cell of every row;
* greedy is (near-)best below 50% density;
* greedy loses to the fixed pairings at 75% density;
* the pairwise column agrees with the paper's absolute numbers within
  a factor of 2 (it lands within ~10% with the calibrated defaults).
"""

import pytest

from repro.analysis import (
    check_order,
    check_ratio_at_least,
    check_within_factor,
    summarize,
)
from repro.analysis.paper_data import IRREGULAR_ORDER, TABLE11_SYNTHETIC_MS
from repro.analysis.tables import format_comparison
from repro.analysis.experiments import table11_data


@pytest.mark.benchmark(group="table11")
def test_table11_synthetic(benchmark, emit):
    data = benchmark.pedantic(lambda: table11_data(), rounds=1, iterations=1)

    blocks = []
    checks = []
    for (d, s), row in sorted(data.items()):
        ms = {k: v * 1e3 for k, v in row.items()}
        # The shape claims below are the *paper's* Table 11 statements,
        # so they compare only the paper's four algorithms; extensions
        # like the local-search refiner (which beats GS by design) are
        # still printed but judged by the optgap harness instead.
        paper_ms = {k: ms[k] for k in IRREGULAR_ORDER if k in ms}
        paper = TABLE11_SYNTHETIC_MS.get((d, s))
        blocks.append((f"{d:.0%} {s}B", ms, paper))
        checks.append(
            check_ratio_at_least(
                f"linear worst {d:.0%}/{s}B",
                paper_ms["linear"],
                max(v for k, v in paper_ms.items() if k != "linear"),
                1.0,
            )
        )
        if d < 0.5:
            checks.append(
                check_order(
                    f"greedy near-best {d:.0%}/{s}B",
                    paper_ms,
                    "greedy",
                    tolerance=0.12,
                )
            )
        if d == 0.75:
            checks.append(
                check_ratio_at_least(
                    f"greedy loses at {d:.0%}/{s}B",
                    ms["greedy"],
                    min(ms["pairwise"], ms["balanced"]),
                    1.0,
                )
            )
        if paper is not None:
            checks.append(
                check_within_factor(
                    f"pairwise absolute {d:.0%}/{s}B",
                    ms["pairwise"],
                    paper["pairwise"],
                    2.0,
                )
            )

    table = format_comparison(
        "Table 11: synthetic irregular patterns, 32 processors (ms)",
        list(IRREGULAR_ORDER) + ["local"],
        blocks,
    )
    emit("table11_synthetic", table + "\n\n" + summarize(checks))
    benchmark.extra_info["pairwise_50pct_256B_ms"] = round(
        data[(0.50, 256)]["pairwise"] * 1e3, 3
    )
    assert all(c.passed for c in checks)
