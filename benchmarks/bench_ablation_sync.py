"""Ablation: the synchronous-communication constraint (Section 3.1).

The paper blames LEX's collapse on CMMD's synchronous-only sends and
conjectures non-blocking sends would help.  With the engine's ``Isend``
this is testable: we run LEX both ways across machine sizes.

Expected shape: the async variant is markedly faster and its advantage
grows with machine size, but it does not catch PEX — the receiver-side
serialization (one message service at a time) is untouched by sender
asynchrony, which is why scheduling (the paper's actual contribution)
matters even with a better message layer.
"""

import pytest

from repro.analysis.compare import ShapeCheck, summarize
from repro.analysis.tables import format_table
from repro.analysis.experiments import exchange_time
from repro.schedules import linear_exchange_time

from conftest import SMALL

MACHINES = (8, 16, 32) if SMALL else (8, 16, 32, 64)
NBYTES = 256


@pytest.mark.benchmark(group="ablation")
def test_sync_vs_async_linear(benchmark, emit):
    def sweep():
        rows = []
        for n in MACHINES:
            sync = linear_exchange_time(n, NBYTES, asynchronous=False)
            async_ = linear_exchange_time(n, NBYTES, asynchronous=True)
            pex = exchange_time("pairwise", n, NBYTES)
            rows.append((n, sync, async_, pex))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["procs", "LEX sync (ms)", "LEX async (ms)", "PEX (ms)", "async speedup"],
        [
            [n, s * 1e3, a * 1e3, p * 1e3, s / a]
            for n, s, a, p in rows
        ],
        title=f"Synchronous vs asynchronous linear exchange ({NBYTES}B)",
    )

    speedups = {n: s / a for n, s, a, _ in rows}
    checks = [
        ShapeCheck(
            "async always faster",
            all(a < s for _, s, a, _ in rows),
            "LEX async < LEX sync at every machine size",
        ),
        ShapeCheck(
            "advantage grows with machine size",
            speedups[MACHINES[-1]] > speedups[MACHINES[0]],
            f"{speedups[MACHINES[0]]:.2f}x @{MACHINES[0]} -> "
            f"{speedups[MACHINES[-1]]:.2f}x @{MACHINES[-1]}",
        ),
        ShapeCheck(
            "async LEX still loses to PEX",
            all(a > p for _, _, a, p in rows),
            "receiver serialization is untouched by sender asynchrony",
        ),
    ]
    emit("ablation_sync", table + "\n\n" + summarize(checks))
    benchmark.extra_info["max_speedup"] = round(max(speedups.values()), 3)
    assert all(c.passed for c in checks)
