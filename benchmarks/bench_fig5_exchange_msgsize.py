"""Figure 5: complete-exchange time vs message size on 32 nodes.

Paper claims reproduced in shape:

* LEX is far worse than PEX/REX/BEX at every size (synchronous sends
  serialize at the single receiver per step);
* at small sizes PEX, REX, BEX are close (REX ahead at 0 bytes);
* at large sizes PEX beats REX, and BEX beats PEX.
"""

import pytest

from repro.analysis import check_order, check_ratio_at_least, summarize
from repro.analysis.experiments import FIG5_SIZES, exchange_time, fig5_data


@pytest.mark.benchmark(group="fig5")
def test_fig5_exchange_vs_message_size(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: fig5_data(sizes=FIG5_SIZES, nprocs=32), rounds=1, iterations=1
    )

    checks = [
        check_ratio_at_least(
            "LEX >> PEX at 256B",
            exchange_time("linear", 32, 256),
            exchange_time("pairwise", 32, 256),
            4.0,
        ),
        check_order(
            "REX best at 0B",
            {a: exchange_time(a, 32, 0) for a in ("pairwise", "recursive", "balanced")},
            "recursive",
        ),
        check_order(
            "BEX best at 1920B",
            {a: exchange_time(a, 32, 1920) for a in ("pairwise", "recursive", "balanced")},
            "balanced",
            tolerance=0.05,
        ),
        check_ratio_at_least(
            "PEX beats REX at 2048B",
            exchange_time("recursive", 32, 2048),
            exchange_time("pairwise", 32, 2048),
            1.3,
        ),
    ]
    text = fig.render() + "\n\n" + fig.to_csv() + "\n" + summarize(checks)
    emit("fig5_exchange_msgsize", text)

    for alg in ("linear", "pairwise", "recursive", "balanced"):
        benchmark.extra_info[f"{alg}_256B_ms"] = round(
            exchange_time(alg, 32, 256) * 1e3, 3
        )
    assert all(c.passed for c in checks)
