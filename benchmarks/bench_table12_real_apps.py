"""Table 12: irregular scheduling of real application patterns.

The five workloads (CG on a 16K-vertex mesh; Euler on 545/2K/3K/9K
meshes) are synthesized end-to-end: mesh -> RCB partition -> halo
pattern -> schedule -> simulated execution on 32 nodes.  The pattern
statistics (density %, mean bytes/op) are printed next to the paper's
Table 12 header so the substitution is auditable.

Shape claims checked:

* greedy is (near-)best on every workload — all densities < 50%;
* linear is the worst column everywhere;
* the greedy column agrees with the paper's milliseconds within 2.5x.
"""

import pytest

from repro.analysis import (
    check_order,
    check_ratio_at_least,
    check_within_factor,
    summarize,
)
from repro.analysis.paper_data import IRREGULAR_ORDER, TABLE12_REAL_MS
from repro.analysis.tables import format_comparison
from repro.analysis.experiments import table12_data


@pytest.mark.benchmark(group="table12")
def test_table12_real_apps(benchmark, emit):
    data, loads = benchmark.pedantic(lambda: table12_data(), rounds=1, iterations=1)

    blocks = []
    checks = []
    for name, row in data.items():
        ms = {k: v * 1e3 for k, v in row.items()}
        # The shape claims are the *paper's* Table 12 statements, so they
        # compare only the paper's four algorithms; extensions like the
        # local-search refiner are still printed but judged by the
        # optgap harness instead.
        paper_ms = {k: ms[k] for k in IRREGULAR_ORDER if k in ms}
        paper = TABLE12_REAL_MS.get(name)
        blocks.append((name, ms, paper))
        checks.append(
            check_order(
                f"greedy near-best on {name}", paper_ms, "greedy", tolerance=0.15
            )
        )
        checks.append(
            check_ratio_at_least(
                f"linear worst on {name}",
                paper_ms["linear"],
                max(v for k, v in paper_ms.items() if k != "linear"),
                1.0,
            )
        )
        if paper is not None:
            checks.append(
                check_within_factor(
                    f"greedy absolute on {name}", ms["greedy"], paper["greedy"], 2.5
                )
            )

    table = format_comparison(
        "Table 12: real application patterns, 32 processors (ms)",
        list(IRREGULAR_ORDER) + ["local"],
        blocks,
    )
    stats = "\n".join("  " + wl.describe() for wl in loads.values())
    emit(
        "table12_real_apps",
        table + "\n\nworkload statistics (ours vs paper):\n" + stats + "\n\n"
        + summarize(checks),
    )
    for name, row in data.items():
        benchmark.extra_info[f"{name}_greedy_ms"] = round(row["greedy"] * 1e3, 3)
    assert all(c.passed for c in checks)
