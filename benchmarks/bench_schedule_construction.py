"""Microbenchmark: schedule construction cost (Section 4.5's amortization).

"The communication schedule needs to be created only once and can be
used thereafter ... the time to compute the schedule can be amortized
over all the iterations."  This is the one place where *host* time is
the scientific quantity: how expensive is running each scheduler on a
32-processor pattern, and how does the provably-optimal coloring
compare?  pytest-benchmark measures it properly (many rounds).

The companion shape check: even the slowest scheduler's construction
cost is tiny next to a single simulated execution of its schedule, so
one iteration already amortizes it.
"""

import pytest

from repro.schedules import (
    CommPattern,
    balanced_schedule,
    coloring_schedule,
    greedy_schedule,
    linear_schedule,
    pairwise_schedule,
)

PATTERN = CommPattern.synthetic(32, 0.25, 256, seed=42)
DENSE = CommPattern.synthetic(32, 0.75, 256, seed=42)

BUILDERS = {
    "linear": linear_schedule,
    "pairwise": pairwise_schedule,
    "balanced": balanced_schedule,
    "greedy": greedy_schedule,
    "coloring": coloring_schedule,
}


@pytest.mark.benchmark(group="construction-25pct")
@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_construction_sparse(benchmark, name):
    sched = benchmark(BUILDERS[name], PATTERN)
    assert sched.nsteps > 0
    benchmark.extra_info["steps"] = sched.nsteps


@pytest.mark.benchmark(group="construction-75pct")
@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_construction_dense(benchmark, name):
    sched = benchmark(BUILDERS[name], DENSE)
    assert sched.nsteps > 0
    benchmark.extra_info["steps"] = sched.nsteps
