"""Figures 6-8: complete-exchange time vs machine size.

One benchmark per message size of the paper's sweep (0 and 256 bytes in
Figure 6, 512 in Figure 7, 1920 in Figure 8), over 16-256 simulated
nodes.

Shape claims checked:

* 0 bytes: REX best at every machine size (lg N steps, no payload);
* 256 bytes: PEX beats REX on small machines (the paper's claim that
  REX overtakes at very large machines does not survive our model's
  store-and-forward byte accounting — see EXPERIMENTS.md for the
  discussion, and note the paper's own Table 5 at 256 processors shows
  REX >= PEX too);
* 512/1920 bytes: PEX/BEX beat REX on small machines; BEX is the best
  of the three at scale.
"""

import pytest

from repro.analysis import check_order, summarize
from repro.analysis.experiments import exchange_time, fig678_data

from conftest import MACHINES


@pytest.mark.benchmark(group="fig678")
@pytest.mark.parametrize("nbytes", [0, 256, 512, 1920])
def test_exchange_scaling(benchmark, emit, nbytes):
    fig = benchmark.pedantic(
        lambda: fig678_data(nbytes, machines=MACHINES), rounds=1, iterations=1
    )

    checks = []
    if nbytes == 0:
        for n in MACHINES:
            checks.append(
                check_order(
                    f"REX best at 0B/N={n}",
                    {a: exchange_time(a, n, 0) for a in ("pairwise", "recursive", "balanced")},
                    "recursive",
                )
            )
    else:
        small = MACHINES[0]
        checks.append(
            check_order(
                f"PEX-family beats REX at {nbytes}B/N={small}",
                {a: exchange_time(a, small, nbytes) for a in ("pairwise", "recursive", "balanced")},
                "pairwise",
                tolerance=0.10,
            )
        )
    if nbytes == 1920 and len(MACHINES) >= 3:
        big = MACHINES[-1]
        checks.append(
            check_order(
                f"BEX best at 1920B/N={big}",
                {a: exchange_time(a, big, 1920) for a in ("pairwise", "balanced")},
                "balanced",
                tolerance=0.05,
            )
        )

    text = fig.render() + "\n\n" + fig.to_csv() + "\n" + summarize(checks)
    emit(f"fig678_scaling_{nbytes}B", text)

    for alg in ("pairwise", "recursive", "balanced"):
        benchmark.extra_info[f"{alg}_N{MACHINES[-1]}_ms"] = round(
            exchange_time(alg, MACHINES[-1], nbytes) * 1e3, 3
        )
    assert all(c.passed for c in checks)
