"""Ablation: why BEX beats PEX — root-traffic balance and its mechanism.

Section 3.4's causal claim: PEX concentrates all inter-cluster traffic
into contiguous step blocks, saturating the fat tree's upper links,
while BEX spreads the same global exchange pairs across every step.
This ablation (a) measures the per-step global-traffic distribution of
both schedules, (b) shows the timing gap grows with the switch
contention coefficient and vanishes when contention is off — i.e. the
advantage really does come from the modeled root contention, not from
step counts (which are identical).
"""

import pytest

from repro.analysis.compare import ShapeCheck, summarize
from repro.analysis.tables import format_table
from repro.machine import CM5Params, MachineConfig
from repro.schedules import analyze, balanced_exchange, execute_schedule, pairwise_exchange

NBYTES = 1024
NPROCS = 32


def gap_at(contention: float) -> float:
    """(PEX - BEX) / PEX at the given switch-contention coefficient."""
    params = CM5Params(switch_contention=contention)
    cfg = MachineConfig(NPROCS, params)
    pex = execute_schedule(pairwise_exchange(NPROCS, NBYTES), cfg).time
    bex = execute_schedule(balanced_exchange(NPROCS, NBYTES), cfg).time
    return (pex - bex) / pex


@pytest.mark.benchmark(group="ablation")
def test_balance_mechanism(benchmark, emit):
    cfg = MachineConfig(NPROCS)
    pex_m = analyze(pairwise_exchange(NPROCS, NBYTES), cfg)
    bex_m = analyze(balanced_exchange(NPROCS, NBYTES), cfg)

    def sweep():
        return {c: gap_at(c) for c in (0.0, 0.06, 0.12, 0.24)}

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    dist_rows = [
        ["PEX", pex_m.global_balance, int(min(pex_m.global_counts)), int(max(pex_m.global_counts)), pex_m.peak_root_bytes],
        ["BEX", bex_m.global_balance, int(min(bex_m.global_counts)), int(max(bex_m.global_counts)), bex_m.peak_root_bytes],
    ]
    dist = format_table(
        ["schedule", "global CV", "min/step", "max/step", "peak root bytes"],
        dist_rows,
        title=f"Global-traffic distribution ({NPROCS} nodes, {NBYTES}B)",
    )
    gap_table = format_table(
        ["switch contention", "relative BEX advantage"],
        [[c, g] for c, g in sorted(gaps.items())],
        title="BEX advantage vs contention coefficient",
    )

    checks = [
        ShapeCheck(
            "BEX spreads global traffic",
            bex_m.global_balance < pex_m.global_balance,
            f"CV {bex_m.global_balance:.3f} vs {pex_m.global_balance:.3f}",
        ),
        ShapeCheck(
            "identical step counts",
            pex_m.nsteps == bex_m.nsteps == NPROCS - 1,
            f"{pex_m.nsteps} vs {bex_m.nsteps}",
        ),
        ShapeCheck(
            "advantage grows with contention",
            gaps[0.24] > gaps[0.06],
            f"{gaps[0.06]:+.3f} @0.06 -> {gaps[0.24]:+.3f} @0.24",
        ),
        ShapeCheck(
            "no contention, no advantage",
            gaps[0.0] < gaps[0.24],
            f"{gaps[0.0]:+.3f} @0 vs {gaps[0.24]:+.3f} @0.24",
        ),
    ]
    emit(
        "ablation_balance",
        dist + "\n\n" + gap_table + "\n\n" + summarize(checks),
    )
    benchmark.extra_info.update({f"gap_c{c}": round(g, 4) for c, g in gaps.items()})
    assert all(c.passed for c in checks)
