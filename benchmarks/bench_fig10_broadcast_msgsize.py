"""Figure 10: broadcast time vs message size on 32 nodes.

LIB vs REB vs the CMMD system broadcast.  Shape claims checked:

* LIB is far worse than REB (N-1 sequential sends vs lg N waves);
* the system broadcast wins for small messages;
* REB overtakes the system broadcast beyond ~1 KB.
"""

import pytest

from repro.analysis import check_ratio_at_least, crossover_x, summarize
from repro.analysis.compare import ShapeCheck
from repro.analysis.experiments import FIG10_SIZES, broadcast_time, fig10_data


@pytest.mark.benchmark(group="fig10")
def test_fig10_broadcast(benchmark, emit):
    fig = benchmark.pedantic(lambda: fig10_data(nprocs=32), rounds=1, iterations=1)

    checks = [
        check_ratio_at_least(
            "LIB >> REB at 1KB",
            broadcast_time("lib", 32, 1024),
            broadcast_time("reb", 32, 1024),
            3.0,
        ),
        ShapeCheck(
            "system wins small",
            broadcast_time("system", 32, 64) < broadcast_time("reb", 32, 64),
            "64B: system vs REB",
        ),
        ShapeCheck(
            "REB wins large",
            broadcast_time("reb", 32, 8192) < broadcast_time("system", 32, 8192),
            "8KB: REB vs system",
        ),
    ]
    sizes = list(FIG10_SIZES)
    reb = [broadcast_time("reb", 32, s) for s in sizes]
    sysb = [broadcast_time("system", 32, s) for s in sizes]
    x = crossover_x(sizes, sysb, reb)
    checks.append(
        ShapeCheck(
            "crossover near 1KB",
            x is not None and 256 <= x <= 4096,
            f"measured crossover at {x:.0f} B (paper: ~1 KB)" if x else "no crossover",
        )
    )

    text = fig.render() + "\n\n" + fig.to_csv() + "\n" + summarize(checks)
    emit("fig10_broadcast_msgsize", text)
    benchmark.extra_info["crossover_bytes"] = round(x) if x else None
    assert all(c.passed for c in checks)
