"""Table 5: 2-D FFT time for all four exchange algorithms.

Array sizes 256^2 to 2048^2 on 32 and 256 simulated nodes, printed next
to the paper's published seconds.  Shape claims checked:

* linear is the worst column everywhere;
* at 256 processors the linear column is catastrophically worse (the
  paper's 4.3 s vs 76 ms at 256^2);
* the non-linear algorithms are within ~25% of each other at 32 nodes
  for mid-size arrays (the paper's near-ties).
"""

import pytest

from repro.analysis import check_ratio_at_least, check_within_factor, summarize
from repro.analysis.paper_data import EXCHANGE_ORDER, TABLE5_FFT_SECONDS
from repro.analysis.tables import format_comparison
from repro.analysis.experiments import table5_data

from conftest import FFT_ARRAYS, FFT_MACHINES


@pytest.mark.benchmark(group="table5")
def test_table5_fft(benchmark, emit):
    data = benchmark.pedantic(
        lambda: table5_data(machine_sizes=FFT_MACHINES, array_sizes=FFT_ARRAYS),
        rounds=1,
        iterations=1,
    )

    blocks = []
    for (p, n), row in sorted(data.items()):
        blocks.append((f"P={p} {n}x{n}", row, TABLE5_FFT_SECONDS.get((p, n))))
    table = format_comparison(
        "Table 5: 2-D FFT (seconds)", EXCHANGE_ORDER, blocks, unit="s"
    )

    checks = []
    for (p, n), row in sorted(data.items()):
        checks.append(
            check_ratio_at_least(
                f"linear worst P={p} n={n}",
                row["linear"],
                min(v for k, v in row.items() if k != "linear"),
                1.0,
            )
        )
        paper = TABLE5_FFT_SECONDS.get((p, n))
        if paper is not None:
            checks.append(
                check_within_factor(
                    f"pairwise absolute P={p} n={n}",
                    row["pairwise"],
                    paper["pairwise"],
                    2.5,
                )
            )
    if (256, 256) in data:
        checks.append(
            check_ratio_at_least(
                "linear catastrophic at P=256",
                data[(256, 256)]["linear"],
                data[(256, 256)]["pairwise"],
                10.0,
            )
        )

    emit("table5_fft2d", table + "\n\n" + summarize(checks))
    for (p, n), row in sorted(data.items()):
        benchmark.extra_info[f"P{p}_n{n}_pairwise_s"] = round(row["pairwise"], 4)
    assert all(c.passed for c in checks)
