"""Service-layer benchmark: sustained scheduling throughput under load.

Where the other benchmarks measure one schedule (construction cost,
simulated exchange time), this one measures the *serving* layer of
:mod:`repro.service`: a Zipf-distributed stream of scheduling requests
over a Table 11-style pattern corpus, with a fraction of requests
drifted one cell to exercise the warm-start repair tier.  The naive
baseline rebuilds every request from scratch through the same builder
registry, so ``speedup`` is the honest value of the content-addressed
cache + single-flight dedup + warm-start tiers.

Outputs:

* ``BENCH_service.json`` at the repo root — machine-readable (schema
  ``repro-bench-service/1``), comparable with ``python -m repro
  perfcmp``;
* ``results/service_bench.txt`` — the human-readable table.

Run standalone (``python benchmarks/bench_service.py [--quick]``) or
under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_service.py``; quick scale when
``REPRO_BENCH_SCALE=small``).
"""

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.service import render_service_bench, run_service_bench


def run_and_save(quick: bool, progress=None) -> dict:
    """Run the bench and persist BENCH_service.json + the text report."""
    bench = run_service_bench(quick=quick, progress=progress)
    path = _REPO_ROOT / "BENCH_service.json"
    path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    results = _REPO_ROOT / "results"
    results.mkdir(exist_ok=True)
    (results / "service_bench.txt").write_text(
        render_service_bench(bench) + "\n"
    )
    return bench


def test_service_bench(emit):
    quick = os.environ.get("REPRO_BENCH_SCALE", "full") == "small"
    bench = run_and_save(quick)
    emit("service_bench", render_service_bench(bench))
    for name, row in bench["workloads"].items():
        assert row["lint_failures"] == 0, f"{name}: served a bad schedule"
        assert row["hit_rate"] > 0, f"{name}: cache never hit"
        assert row["schedules_per_sec"] > 0, f"{name}: no throughput"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus and request counts (CI smoke scale)",
    )
    cli_args = parser.parse_args()
    doc = run_and_save(cli_args.quick, progress=print)
    print()
    print(render_service_bench(doc))
    print(f"[saved to {_REPO_ROOT / 'BENCH_service.json'}]")
