"""Service-layer benchmark: sustained scheduling throughput under load.

Where the other benchmarks measure one schedule (construction cost,
simulated exchange time), this one measures the *serving* layer of
:mod:`repro.service`: a Zipf-distributed stream of scheduling requests
over a Table 11-style pattern corpus, with a fraction of requests
drifted one cell to exercise the warm-start repair tier.  The naive
baseline rebuilds every request from scratch through the same builder
registry, so ``speedup`` is the honest value of the content-addressed
cache + single-flight dedup + warm-start tiers.

Outputs:

* full scale: ``BENCH_service.json`` at the repo root — the committed
  artifact (schema ``repro-bench-service/1``, ``"scale": "full"``),
  comparable with ``python -m repro perfcmp``;
* ``--quick``: ``BENCH_service_quick.json`` — a side path, so a CI
  smoke run can never clobber the committed full-scale artifact
  (``--force`` overrides the guard when a path collision does occur);
* ``results/service_bench.txt`` — the human-readable table.

Run standalone (``python benchmarks/bench_service.py [--quick]``) or
under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_service.py``; quick scale when
``REPRO_BENCH_SCALE=small``).
"""

import argparse
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.service import (
    render_service_bench,
    run_service_bench,
    write_service_bench,
)


def run_and_save(quick: bool, progress=None, force: bool = False) -> tuple:
    """Run the bench; persist the scale-routed JSON + the text report.

    Returns ``(bench, path)`` — quick runs land in
    ``BENCH_service_quick.json``, full runs in ``BENCH_service.json``
    (see :func:`repro.service.write_service_bench` for the clobber
    guard).
    """
    bench = run_service_bench(quick=quick, progress=progress)
    path = write_service_bench(bench, root=_REPO_ROOT, force=force)
    results = _REPO_ROOT / "results"
    results.mkdir(exist_ok=True)
    (results / "service_bench.txt").write_text(
        render_service_bench(bench) + "\n"
    )
    return bench, path


def test_service_bench(emit):
    quick = os.environ.get("REPRO_BENCH_SCALE", "full") == "small"
    bench, _ = run_and_save(quick)
    emit("service_bench", render_service_bench(bench))
    assert bench["scale"] == ("quick" if quick else "full")
    for name, row in bench["workloads"].items():
        assert row["lint_failures"] == 0, f"{name}: served a bad schedule"
        assert row["hit_rate"] > 0, f"{name}: cache never hit"
        assert row["schedules_per_sec"] > 0, f"{name}: no throughput"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus and request counts (CI smoke scale); writes "
        "BENCH_service_quick.json instead of the committed artifact",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite a full-scale BENCH_service.json even from a "
        "non-full run",
    )
    cli_args = parser.parse_args()
    doc, out_path = run_and_save(
        cli_args.quick, progress=print, force=cli_args.force
    )
    print()
    print(render_service_bench(doc))
    print(f"[saved to {out_path}]")
