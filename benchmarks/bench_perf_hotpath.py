"""Hot-path perf benchmark: wall-clock of the canonical sim workloads.

Unlike the other benchmarks (which regenerate paper exhibits and care
about *simulated* milliseconds), this one measures how long the host
takes to run the simulator's hot path — the struct-of-arrays
:class:`~repro.machine.contention.FluidNetwork` and the compiled
progressive-filling kernel of :mod:`repro.machine.bandwidth`.  Workload
definitions live in :mod:`repro.analysis.perf` so the ``perf`` CLI
subcommand and this script stay in lockstep.

Outputs:

* ``BENCH_sim.json`` at the repo root — machine-readable, diffed by
  ``python -m repro perfcmp`` (CI fails on >25 % regressions against
  the committed ``benchmarks/BENCH_baseline.json``);
* ``results/perf_hotpath.txt`` — the human-readable table.

Run standalone (``python benchmarks/bench_perf_hotpath.py [--quick]``)
or under pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_perf_hotpath.py``; quick scale when
``REPRO_BENCH_SCALE=small``).
"""

import argparse
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.perf import render_report, run_perf, write_bench


def run_and_save(quick: bool, progress=None, jobs: int = 0) -> dict:
    """Run the workloads and persist BENCH_sim.json + the text report."""
    bench = run_perf(quick=quick, progress=progress, jobs=jobs)
    write_bench(bench, _REPO_ROOT / "BENCH_sim.json")
    results = _REPO_ROOT / "results"
    results.mkdir(exist_ok=True)
    (results / "perf_hotpath.txt").write_text(render_report(bench) + "\n")
    return bench


def test_perf_hotpath(emit):
    quick = os.environ.get("REPRO_BENCH_SCALE", "full") == "small"
    bench = run_and_save(quick)
    emit("perf_hotpath", render_report(bench))
    for name, row in bench["workloads"].items():
        assert row["wall_seconds"] > 0, f"{name}: no time elapsed?"
        assert row["messages"] > 0, f"{name}: workload sent no messages"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small machines only (CI smoke scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the workload fan-out (0 = inline; "
        "parallel timings are noisier — see repro.analysis.perf)",
    )
    cli_args = parser.parse_args()
    doc = run_and_save(cli_args.quick, progress=print, jobs=cli_args.jobs)
    print()
    print(render_report(doc))
    print(f"[saved to {_REPO_ROOT / 'BENCH_sim.json'}]")
