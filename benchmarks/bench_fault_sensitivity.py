"""Fault sensitivity: schedules under stragglers and message loss.

Not a paper exhibit — a robustness probe of the reproduced schedules.
One rank's local work (pack/unpack memcpys, compute delays) is slowed by
1x/2x/8x and the four complete-exchange schedules are re-timed:

* PEX/BEX/GS move every byte in one hop with no local staging, so a
  compute straggler barely touches them;
* REX stages data through pack/unpack memcpys at every one of its
  log2(P) steps, so the straggler's slowdown compounds — the measured
  claim is that an 8x straggler degrades REX *strictly more* than BEX,
  relative to each schedule's healthy baseline.

A second sweep injects random message drops and shows every schedule
still completing through the retry layer with zero lost bytes (the
retries are counted from the trace).

Run under pytest-benchmark (``PYTHONPATH=src python -m pytest
benchmarks/bench_fault_sensitivity.py``) or standalone
(``python benchmarks/bench_fault_sensitivity.py``); either way the
rendered table lands in ``results/fault_sensitivity.txt``.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.faults import FaultPlan, MessageDrop, NodeStraggler
from repro.machine import CM5Params, MachineConfig
from repro.schedules import (
    CommPattern,
    balanced_exchange,
    execute_schedule,
    greedy_schedule,
    pairwise_exchange,
    recursive_exchange,
)

NPROCS = 16
NBYTES = 256
SEVERITIES = (1.0, 2.0, 8.0)
STRAGGLER_RANK = 5
DROP_PROBABILITY = 0.05
DROP_SEED = 3


def _builders(n, nbytes):
    return [
        ("PEX", pairwise_exchange(n, nbytes)),
        ("BEX", balanced_exchange(n, nbytes)),
        ("REX", recursive_exchange(n, nbytes)),
        ("GS", greedy_schedule(CommPattern.complete_exchange(n, nbytes))),
    ]


def fault_sensitivity_data(n=NPROCS, nbytes=NBYTES):
    """Time each schedule per straggler severity, plus one drop run.

    Returns ``(straggle, drops)``: ``straggle[algo][severity]`` is the
    makespan in seconds, ``drops[algo]`` the trace summary of a run
    under random message loss.
    """
    cfg = MachineConfig(n, CM5Params(routing_jitter=0.0))
    straggle = {}
    drops = {}
    for label, sched in _builders(n, nbytes):
        per_sev = {}
        for sev in SEVERITIES:
            plan = (
                None
                if sev == 1.0
                else FaultPlan((NodeStraggler(STRAGGLER_RANK, sev),))
            )
            per_sev[sev] = execute_schedule(sched, cfg, faults=plan).time
        straggle[label] = per_sev

        drop_plan = FaultPlan((MessageDrop(DROP_PROBABILITY),), seed=DROP_SEED)
        drops[label] = (
            execute_schedule(sched, cfg, faults=drop_plan, trace=True)
            .sim.trace.summary()
        )
    return straggle, drops


def render(straggle, drops):
    lines = [
        f"Fault sensitivity: {NPROCS} nodes, {NBYTES} B complete exchange,"
        f" one {SEVERITIES[-1]:.0f}x straggler at rank {STRAGGLER_RANK}",
        "",
        f"{'algorithm':<10} "
        + " ".join(f"{s:>6.0f}x" for s in SEVERITIES)
        + f" {'worst/healthy':>14}",
    ]
    for label, per_sev in straggle.items():
        rel = per_sev[SEVERITIES[-1]] / per_sev[1.0]
        lines.append(
            f"{label:<10} "
            + " ".join(f"{per_sev[s] * 1e3:6.3f}" for s in SEVERITIES)
            + f" {rel:13.2f}x"
        )
    lines += [
        "",
        f"message drops (p={DROP_PROBABILITY}, seed {DROP_SEED}):"
        " all schedules complete via retries",
        f"{'algorithm':<10} {'messages':>9} {'retries':>8} {'lost':>6}",
    ]
    for label, summ in drops.items():
        lines.append(
            f"{label:<10} {summ.message_count:9d} {summ.retry_count:8d} "
            f"{summ.lost_bytes:5d}B"
        )
    return "\n".join(lines)


def check(straggle, drops):
    """Assert the headline claims; returns the REX/BEX relative hit."""
    worst = SEVERITIES[-1]
    rel = {a: per[worst] / per[1.0] for a, per in straggle.items()}
    assert rel["REX"] > rel["BEX"], (
        f"straggler should hurt store-and-forward REX more than BEX "
        f"(REX {rel['REX']:.2f}x vs BEX {rel['BEX']:.2f}x)"
    )
    for label, summ in drops.items():
        assert summ.lost_bytes == 0, f"{label}: lost {summ.lost_bytes} B"
        assert summ.retry_count > 0, f"{label}: drop run exercised no retries"
    return rel


@pytest.mark.benchmark(group="faults")
def test_fault_sensitivity(benchmark, emit):
    straggle, drops = benchmark.pedantic(
        fault_sensitivity_data, rounds=1, iterations=1
    )
    rel = check(straggle, drops)
    emit("fault_sensitivity", render(straggle, drops))
    benchmark.extra_info["rex_8x_rel"] = round(rel["REX"], 3)
    benchmark.extra_info["bex_8x_rel"] = round(rel["BEX"], 3)


if __name__ == "__main__":
    straggle_data, drop_data = fault_sensitivity_data()
    check(straggle_data, drop_data)
    text = render(straggle_data, drop_data)
    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    path = out / "fault_sensitivity.txt"
    path.write_text(text + "\n")
    print(text)
    print(f"[saved to {path}]")
